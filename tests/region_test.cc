#include <gtest/gtest.h>

#include <set>

#include "region/clustering.h"
#include "region/region_graph.h"
#include "region/trajectory_graph.h"
#include "routing/path.h"
#include "test_util.h"

namespace l2r {
namespace {

using testing::MakeGrid;
using testing::MakeLine;
using testing::MakeTraj;

// ---------- trajectory graph ----------

TEST(TrajectoryGraphTest, CountsPopularity) {
  const RoadNetwork net = MakeLine(5, 100);
  std::vector<MatchedTrajectory> trajs = {
      MakeTraj({0, 1, 2}),
      MakeTraj({2, 1}),  // reverse direction counts to the same edge
      MakeTraj({1, 2, 3, 4}),
  };
  auto g = TrajectoryGraph::Build(net, trajs);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->vertices().size(), 5u);
  EXPECT_EQ(g->edges().size(), 4u);
  // Edge {1,2}: traversed by all three trajectories.
  uint64_t pop12 = 0;
  for (const auto& e : g->edges()) {
    if (e.u == 1 && e.v == 2) pop12 = e.popularity;
  }
  EXPECT_EQ(pop12, 3u);
  // Edge pops: {0,1}=1, {1,2}=3, {2,3}=1, {3,4}=1.
  EXPECT_EQ(g->total_popularity(), 6u);
  EXPECT_EQ(g->VertexPopularity(1), 1u + 3u);  // edges {0,1} and {1,2}
  EXPECT_EQ(g->VertexPopularity(0), 1u);
}

TEST(TrajectoryGraphTest, UncoveredVerticesExcluded) {
  const RoadNetwork net = MakeLine(10);
  std::vector<MatchedTrajectory> trajs = {MakeTraj({0, 1, 2})};
  auto g = TrajectoryGraph::Build(net, trajs);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->vertices().size(), 3u);
  EXPECT_EQ(g->VertexPopularity(7), 0u);
  EXPECT_TRUE(g->IncidentEdges(7).empty());
}

TEST(TrajectoryGraphTest, RejectsNonRoadHop) {
  const RoadNetwork net = MakeLine(5);
  std::vector<MatchedTrajectory> trajs = {MakeTraj({0, 2})};
  EXPECT_FALSE(TrajectoryGraph::Build(net, trajs).ok());
}

TEST(TrajectoryGraphTest, RejectsOutOfRangeVertex) {
  const RoadNetwork net = MakeLine(3);
  std::vector<MatchedTrajectory> trajs = {MakeTraj({0, 99})};
  EXPECT_FALSE(TrajectoryGraph::Build(net, trajs).ok());
}

// ---------- modularity ----------

TEST(ModularityTest, MatchesFormula) {
  // DeltaQ = s_ij/S - Si*Sj/S^2.
  EXPECT_DOUBLE_EQ(ModularityGain(10, 20, 30, 100),
                   10.0 / 100 - (20.0 * 30.0) / (100.0 * 100.0));
  EXPECT_GT(ModularityGain(10, 10, 10, 100), 0);
  EXPECT_LT(ModularityGain(1, 60, 60, 100), 0);
}

// ---------- clustering ----------

TEST(ClusteringTest, UniformPathMergesIntoFewRegions) {
  const RoadNetwork net = MakeLine(20, 100);
  std::vector<MatchedTrajectory> trajs;
  std::vector<VertexId> full;
  for (VertexId v = 0; v < 20; ++v) full.push_back(v);
  for (int k = 0; k < 5; ++k) trajs.push_back(MakeTraj(full));
  auto g = TrajectoryGraph::Build(net, trajs);
  ASSERT_TRUE(g.ok());
  auto clusters = BottomUpClustering(*g, net.NumVertices());
  ASSERT_TRUE(clusters.ok());
  EXPECT_LT(clusters->regions.size(), 8u);  // aggregates actually grow
  // Every covered vertex is in exactly one region.
  std::set<VertexId> seen;
  for (const auto& region : clusters->regions) {
    for (const VertexId v : region) {
      EXPECT_TRUE(seen.insert(v).second) << "vertex in two regions";
    }
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(ClusteringTest, RoadTypeBoundariesStopMerging) {
  // Line with left half residential, right half primary; same popularity.
  RoadNetworkBuilder b;
  for (int i = 0; i < 11; ++i) b.AddVertex(Point(i * 100.0, 0));
  for (int i = 0; i < 10; ++i) {
    const RoadType t =
        i < 5 ? RoadType::kResidential : RoadType::kPrimary;
    b.AddTwoWayEdge(i, i + 1, t, 50, 40);
  }
  auto net = b.Build();
  ASSERT_TRUE(net.ok());
  std::vector<MatchedTrajectory> trajs;
  std::vector<VertexId> full;
  for (VertexId v = 0; v <= 10; ++v) full.push_back(v);
  for (int k = 0; k < 4; ++k) trajs.push_back(MakeTraj(full));
  auto g = TrajectoryGraph::Build(*net, trajs);
  ASSERT_TRUE(g.ok());
  auto clusters = BottomUpClustering(*g, net->NumVertices());
  ASSERT_TRUE(clusters.ok());
  // No region mixes both halves (except possibly the boundary vertex 5,
  // which may join either side): vertices 0-4 and 6-10 never share one.
  const auto& v2r = clusters->vertex_region;
  for (VertexId a = 0; a <= 4; ++a) {
    for (VertexId c = 6; c <= 10; ++c) {
      EXPECT_NE(v2r[a], v2r[c]);
    }
  }
}

TEST(ClusteringTest, NegativeGainPreventsMerge) {
  // Two heavy hubs joined by a light edge: the hubs must not merge.
  RoadNetworkBuilder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(Point(i * 100.0, 0));
  b.AddVertex(Point(150, 100));  // 6
  // Heavy star at 1 and at 4, light bridge 2-3.
  b.AddTwoWayEdge(0, 1, RoadType::kResidential, 50, 40);
  b.AddTwoWayEdge(1, 2, RoadType::kResidential, 50, 40);
  b.AddTwoWayEdge(2, 3, RoadType::kResidential, 50, 40);
  b.AddTwoWayEdge(3, 4, RoadType::kResidential, 50, 40);
  b.AddTwoWayEdge(4, 5, RoadType::kResidential, 50, 40);
  auto net = b.Build();
  ASSERT_TRUE(net.ok());
  std::vector<MatchedTrajectory> trajs;
  for (int k = 0; k < 50; ++k) trajs.push_back(MakeTraj({0, 1, 2}));
  for (int k = 0; k < 50; ++k) trajs.push_back(MakeTraj({3, 4, 5}));
  trajs.push_back(MakeTraj({2, 3}));  // light bridge
  auto g = TrajectoryGraph::Build(*net, trajs);
  ASSERT_TRUE(g.ok());
  auto clusters = BottomUpClustering(*g, net->NumVertices());
  ASSERT_TRUE(clusters.ok());
  const auto& v2r = clusters->vertex_region;
  // DeltaQ across the bridge: 1/201 - (101*101)/201^2 < 0 -> separate.
  EXPECT_NE(v2r[1], v2r[4]);
  // But each heavy side merges internally.
  EXPECT_EQ(v2r[0], v2r[1]);
  EXPECT_EQ(v2r[4], v2r[5]);
}

TEST(ClusteringTest, CoversExactlyTrajectoryVertices) {
  const RoadNetwork net = MakeGrid(6, 6, 100);
  std::vector<MatchedTrajectory> trajs = {
      MakeTraj({0, 1, 2, 3}),
      MakeTraj({6, 7, 8}),
      MakeTraj({0, 6, 12}),
  };
  auto g = TrajectoryGraph::Build(net, trajs);
  ASSERT_TRUE(g.ok());
  auto clusters = BottomUpClustering(*g, net.NumVertices());
  ASSERT_TRUE(clusters.ok());
  std::set<VertexId> covered;
  for (const auto& t : trajs) covered.insert(t.path.begin(), t.path.end());
  for (VertexId v = 0; v < net.NumVertices(); ++v) {
    if (covered.count(v)) {
      EXPECT_NE(clusters->vertex_region[v], kNoRegion);
      EXPECT_LT(clusters->vertex_region[v], clusters->regions.size());
    } else {
      EXPECT_EQ(clusters->vertex_region[v], kNoRegion);
    }
  }
}

TEST(ClusteringTest, PopularityConserved) {
  const RoadNetwork net = MakeGrid(5, 5, 100);
  std::vector<MatchedTrajectory> trajs = {
      MakeTraj({0, 1, 2, 7, 12}), MakeTraj({0, 1, 2}), MakeTraj({12, 7, 2})};
  auto g = TrajectoryGraph::Build(net, trajs);
  ASSERT_TRUE(g.ok());
  auto clusters = BottomUpClustering(*g, net.NumVertices());
  ASSERT_TRUE(clusters.ok());
  uint64_t total = 0;
  for (const uint64_t p : clusters->region_popularity) total += p;
  // Each region's popularity is the sum of its member vertex popularities
  // (paper: aggregates sum member popularities), so the grand total is
  // 2 * S (every edge contributes to both endpoints).
  EXPECT_EQ(total, 2 * g->total_popularity());
}

TEST(ClusteringTest, EmptyGraphYieldsNoRegions) {
  auto clusters = BottomUpClustering(TrajectoryGraph(), 10);
  // Empty trajectory graph is not an error, just no regions.
  ASSERT_TRUE(clusters.ok());
  EXPECT_TRUE(clusters->regions.empty());
  EXPECT_EQ(clusters->vertex_region.size(), 10u);
}

// ---------- region graph ----------

class RegionGraphTest : public ::testing::Test {
 protected:
  /// Builds a 8x8 grid world where two horizontal corridors are heavily
  /// traversed, producing two elongated regions plus BFS B-edges.
  void SetUp() override {
    net_ = MakeGrid(8, 8, 100);
    auto row_path = [&](int row) {
      std::vector<VertexId> path;
      for (int i = 0; i < 8; ++i) path.push_back(row * 8 + i);
      return path;
    };
    for (int k = 0; k < 10; ++k) {
      trajs_.push_back(MakeTraj(row_path(1), k * 100.0));
      trajs_.push_back(MakeTraj(row_path(6), k * 100.0));
    }
    // One trajectory connecting the corridors (creates T-edges).
    std::vector<VertexId> cross = {8 + 3, 16 + 3, 24 + 3, 32 + 3,
                                   40 + 3, 48 + 3};
    trajs_.push_back(MakeTraj(cross, 5000));

    auto g = TrajectoryGraph::Build(net_, trajs_);
    L2R_CHECK(g.ok());
    auto clusters = BottomUpClustering(*g, net_.NumVertices());
    L2R_CHECK(clusters.ok());
    clustering_ = std::move(clusters).value();
  }

  RoadNetwork net_;
  std::vector<MatchedTrajectory> trajs_;
  ClusteringResult clustering_;
};

TEST_F(RegionGraphTest, BuildsTAndBEdges) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(graph->NumRegions(), 1u);
  EXPECT_GT(graph->NumTEdges(), 0u);
  EXPECT_EQ(graph->NumEdges(), graph->NumTEdges() + graph->NumBEdges());
}

TEST_F(RegionGraphTest, TEdgePathsConnectTheirRegions) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  for (uint32_t e = 0; e < graph->NumTEdges(); ++e) {
    const RegionEdge& edge = graph->edge(e);
    EXPECT_TRUE(edge.is_t_edge);
    ASSERT_FALSE(edge.t_paths.empty());
    for (const StoredPathRef& ref : edge.t_paths) {
      const auto path = graph->ResolvePath(ref);
      ASSERT_GE(path.size(), 2u);
      // Path starts where the trajectory left `from` and ends where it
      // entered `to` (transfer centers).
      EXPECT_EQ(graph->RegionOf(path.front()), edge.from);
      EXPECT_EQ(graph->RegionOf(path.back()), edge.to);
      EXPECT_TRUE(PathIsConnected(net_, path));
    }
  }
}

TEST_F(RegionGraphTest, TEdgePathsSortedByCount) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  for (uint32_t e = 0; e < graph->NumTEdges(); ++e) {
    const auto& paths = graph->edge(e).t_paths;
    for (size_t i = 1; i < paths.size(); ++i) {
      EXPECT_GE(paths[i - 1].count, paths[i].count);
    }
  }
}

TEST_F(RegionGraphTest, RegionGraphIsConnectedAfterBfs) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  // Undirected reachability over all region edges from region 0.
  std::vector<bool> seen(graph->NumRegions(), false);
  std::vector<RegionId> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const RegionId r = stack.back();
    stack.pop_back();
    for (const auto& edge : graph->edges()) {
      RegionId other = kNoRegion;
      if (edge.from == r) other = edge.to;
      if (edge.to == r) other = edge.from;
      if (other != kNoRegion && !seen[other]) {
        seen[other] = true;
        ++count;
        stack.push_back(other);
      }
    }
  }
  EXPECT_EQ(count, graph->NumRegions());
}

TEST_F(RegionGraphTest, TransferCentersBelongToRegion) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  for (RegionId r = 0; r < graph->NumRegions(); ++r) {
    const RegionInfo& info = graph->region(r);
    EXPECT_FALSE(info.transfer_centers.empty());
    for (const VertexId v : info.transfer_centers) {
      EXPECT_EQ(graph->RegionOf(v), r);
    }
  }
}

TEST_F(RegionGraphTest, InnerPathsStayInsideRegion) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  for (RegionId r = 0; r < graph->NumRegions(); ++r) {
    for (const StoredPathRef& ref : graph->region(r).inner_paths) {
      for (const VertexId v : graph->ResolvePath(ref)) {
        EXPECT_EQ(graph->RegionOf(v), r);
      }
    }
  }
}

TEST_F(RegionGraphTest, RegionMetadataComputed) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  for (RegionId r = 0; r < graph->NumRegions(); ++r) {
    const RegionInfo& info = graph->region(r);
    EXPECT_FALSE(info.members.empty());
    EXPECT_GE(info.hull_area_km2, 0);
    EXPECT_GE(info.hull_diameter_km, 0);
    uint64_t type_total = 0;
    for (const auto c : info.road_type_counts) type_total += c;
    EXPECT_GT(type_total, 0u);
    EXPECT_NE(info.TopRoadTypes(2), 0);
  }
}

TEST_F(RegionGraphTest, FindEdgeDirected) {
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  ASSERT_GT(graph->NumEdges(), 0u);
  const RegionEdge& e = graph->edge(0);
  EXPECT_GE(graph->FindEdge(e.from, e.to), 0);
  EXPECT_EQ(graph->FindEdge(999999 % graph->NumRegions(),
                            999999 % graph->NumRegions()),
            -1);  // self edge never exists
}

TEST_F(RegionGraphTest, MultiRegionTrajectoryCreatesPairEdges) {
  // The cross trajectory visits several regions; each ordered pair along
  // it gets a T-edge (up to m(m-1)/2).
  auto graph = BuildRegionGraph(net_, clustering_, &trajs_);
  ASSERT_TRUE(graph.ok());
  const auto& cross = trajs_.back().path;
  std::vector<RegionId> visited;
  for (const VertexId v : cross) {
    const RegionId r = graph->RegionOf(v);
    if (r != kNoRegion &&
        (visited.empty() || visited.back() != r)) {
      visited.push_back(r);
    }
  }
  for (size_t i = 0; i < visited.size(); ++i) {
    for (size_t j = i + 1; j < visited.size(); ++j) {
      if (visited[i] == visited[j]) continue;
      EXPECT_GE(graph->FindEdge(visited[i], visited[j]), 0)
          << visited[i] << "->" << visited[j];
    }
  }
}

TEST_F(RegionGraphTest, NullTrajsRejected) {
  EXPECT_FALSE(BuildRegionGraph(net_, clustering_, nullptr).ok());
}

}  // namespace
}  // namespace l2r
