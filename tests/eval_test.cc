#include <gtest/gtest.h>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "test_util.h"

namespace l2r {
namespace {

using testing::MakeLine;
using testing::MakeTraj;

TEST(DistanceBucketsTest, BucketAssignment) {
  DistanceBuckets buckets;
  buckets.edges_km = {0, 2, 5, 10, 35};
  EXPECT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets.BucketOf(1500), 0u);
  EXPECT_EQ(buckets.BucketOf(2000), 0u);   // boundary goes low
  EXPECT_EQ(buckets.BucketOf(2001), 1u);
  EXPECT_EQ(buckets.BucketOf(7000), 2u);
  EXPECT_EQ(buckets.BucketOf(34000), 3u);
  EXPECT_EQ(buckets.BucketOf(99000), 3u);  // clamped into last bucket
  EXPECT_EQ(buckets.LabelOf(1), "(2,5]");
}

TEST(BuildQueriesTest, ExtractsFromTestTrajectories) {
  const RoadNetwork net = MakeLine(6, 100);
  std::vector<MatchedTrajectory> test = {
      MakeTraj({0, 1, 2, 3}, 1000, 7),
      MakeTraj({5}, 2000, 8),        // degenerate: skipped
      MakeTraj({2, 3, 4, 5}, 3000, 9),
  };
  const auto queries = BuildQueries(net, test);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].s, 0u);
  EXPECT_EQ(queries[0].d, 3u);
  EXPECT_EQ(queries[0].driver_id, 7u);
  EXPECT_NEAR(queries[0].gt_length_m, 300, 1e-6);
  EXPECT_EQ(queries[1].s, 2u);
}

TEST(BuildQueriesTest, MaxQueriesCap) {
  const RoadNetwork net = MakeLine(6, 100);
  std::vector<MatchedTrajectory> test;
  for (int i = 0; i < 20; ++i) test.push_back(MakeTraj({0, 1, 2}, i));
  EXPECT_EQ(BuildQueries(net, test, 5).size(), 5u);
}

TEST(RegionCategoryTest, Names) {
  EXPECT_STREQ(RegionCategoryName(RegionCategory::kInRegion), "InRegion");
  EXPECT_STREQ(RegionCategoryName(RegionCategory::kInOutRegion),
               "InOutRegion");
  EXPECT_STREQ(RegionCategoryName(RegionCategory::kOutRegion), "OutRegion");
}

TEST(EvaluateRouterTest, AggregatesAccuracyAndFailures) {
  const RoadNetwork net = MakeLine(11, 1000);  // 1 km edges
  std::vector<QueryCase> queries;
  for (int i = 0; i < 4; ++i) {
    QueryCase q;
    q.s = 0;
    q.d = static_cast<VertexId>(3 + i);
    q.gt_path = {};
    for (VertexId v = 0; v <= q.d; ++v) q.gt_path.push_back(v);
    q.gt_length_m = (3.0 + i) * 1000;
    queries.push_back(q);
  }
  DistanceBuckets buckets;
  buckets.edges_km = {0, 3.5, 10};

  // A fake router that answers perfectly for even queries and fails odd
  // ones.
  int call = 0;
  const RouterEval eval = EvaluateRouter(
      net, "fake", queries, buckets,
      [](const QueryCase&) { return RegionCategory::kInRegion; },
      [&](const QueryCase& q) -> Result<Path> {
        if (call++ % 2 == 1) return Status::NotFound("x");
        Path p;
        p.vertices = q.gt_path;
        return p;
      });
  EXPECT_EQ(eval.overall.queries, 4u);
  EXPECT_EQ(eval.overall.failures, 2u);
  EXPECT_NEAR(eval.overall.mean_accuracy_eq1, 50.0, 1e-9);
  EXPECT_NEAR(eval.overall.mean_accuracy_eq4, 50.0, 1e-9);
  // Distance bucketing: query 0 (3 km) lands in the first bucket.
  EXPECT_EQ(eval.by_distance[0].queries, 1u);
  EXPECT_EQ(eval.by_distance[1].queries, 3u);
  // Region bucketing: all in InRegion.
  EXPECT_EQ(eval.by_region[0].queries, 4u);
  EXPECT_EQ(eval.by_region[2].queries, 0u);
}

TEST(DatasetSpecTest, PresetsAreSane) {
  const DatasetSpec metro = MetroDataset(0.5);
  EXPECT_EQ(metro.network.style, NetworkStyle::kMetro);
  EXPECT_EQ(metro.traj.num_trajectories, 6000u);
  EXPECT_GT(metro.buckets.size(), 2u);
  const DatasetSpec city = CityDataset(0.1);
  EXPECT_EQ(city.network.style, NetworkStyle::kCity);
  EXPECT_EQ(city.traj.num_trajectories, 1000u);
  EXPECT_GT(city.traj.sample_interval_s, metro.traj.sample_interval_s);
}

TEST(DatasetBuildTest, SmallCityDatasetEndToEnd) {
  DatasetSpec spec = CityDataset(0.03);
  spec.network.city_width_m = 6000;
  spec.network.city_height_m = 5000;
  auto built = BuildDataset(spec);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->world.net.NumVertices(), 50u);
  EXPECT_GT(built->split.train.size(), 100u);
  EXPECT_GT(built->split.test.size(), 10u);
  // Train strictly precedes test in time.
  double max_train = 0;
  for (const auto& t : built->split.train) {
    max_train = std::max(max_train, t.departure_time);
  }
  for (const auto& t : built->split.test) {
    EXPECT_GT(t.departure_time, max_train - 1e-9);
  }
}

}  // namespace
}  // namespace l2r
