// Real-thread hammers for the serving stack's shared state (CTest label
// `tsan`): RouteCache, SingleFlight, StitchMemo, WorkspacePool,
// ManualClock's advance/wait protocol, the global ThreadPool, and a
// StreamRouter under genuinely concurrent submitters. Each test uses at
// least 8 threads and no sleeps — forward progress comes from joins,
// condition variables and yield-loops on observable state, so the suite
// is exactly as meaningful under TSan (where it is the main race-finder)
// as in the plain fast suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/workspace_pool.h"
#include "core/batch_router.h"
#include "core/l2r.h"
#include "eval/datasets.h"
#include "serve/chaos_service.h"
#include "serve/clock.h"
#include "serve/overload_controller.h"
#include "serve/route_cache.h"
#include "serve/serving_router.h"
#include "serve/single_flight.h"
#include "serve/stitch_memo.h"
#include "serve/stream_router.h"
#include "test_util.h"

namespace l2r {
namespace {

constexpr int kThreads = 8;

RouteResult MakeResult(VertexId a, size_t hops) {
  RouteResult r;
  r.path.vertices.resize(hops + 1);
  for (size_t i = 0; i <= hops; ++i) {
    r.path.vertices[i] = a + static_cast<VertexId>(i);
  }
  r.path.cost = static_cast<double>(hops);
  r.method = RouteMethod::kRegionGraph;
  r.region_hops = hops;
  return r;
}

// ---------------------------------------------------------------------------
// WorkspacePool: leases checked out on one thread, returned on another.

TEST(WorkspacePoolStress, CrossThreadReturnContention) {
  // Producers acquire and stamp objects, consumers validate and release
  // them — every return happens on a different thread than its checkout,
  // under heavy Acquire/Return contention. A missing happens-before edge
  // shows up as a torn stamp; lost objects show up in the idle count.
  using Scratch = std::vector<uint64_t>;
  WorkspacePool<Scratch> pool(
      [] { return std::make_unique<Scratch>(64, 0); });
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kOpsPerProducer = 2000;
  Mutex mu;
  std::vector<WorkspacePool<Scratch>::Lease> handoff;
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> next_stamp{1};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerProducer; ++i) {
        auto lease = pool.Acquire();
        const uint64_t stamp =
            next_stamp.fetch_add(1, std::memory_order_relaxed);
        for (uint64_t& slot : *lease) slot = stamp;
        {
          MutexLock lock(mu);
          handoff.push_back(std::move(lease));
        }
        produced.fetch_add(1, std::memory_order_release);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        WorkspacePool<Scratch>::Lease lease;
        {
          MutexLock lock(mu);
          if (!handoff.empty()) {
            lease = std::move(handoff.back());
            handoff.pop_back();
          }
        }
        if (!lease) {
          if (producers_done.load(std::memory_order_acquire) &&
              consumed.load(std::memory_order_acquire) ==
                  produced.load(std::memory_order_acquire)) {
            return;
          }
          std::this_thread::yield();
          continue;
        }
        const uint64_t stamp = (*lease)[0];
        for (const uint64_t slot : *lease) {
          if (slot != stamp) torn.fetch_add(1, std::memory_order_relaxed);
        }
        consumed.fetch_add(1, std::memory_order_release);
        // `lease` releases here — a thread that did not check it out.
      }
    });
  }
  for (size_t i = 0; i < static_cast<size_t>(kProducers); ++i) {
    threads[i].join();
  }
  producers_done.store(true, std::memory_order_release);
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(torn.load(std::memory_order_acquire), 0);
  EXPECT_EQ(consumed.load(std::memory_order_acquire),
            kProducers * kOpsPerProducer);
  // No object leaked or double-returned: everything created is idle again.
  EXPECT_EQ(pool.IdleCount(), pool.CreatedCount());
  EXPECT_GE(pool.CreatedCount(), 1u);
}

// ---------------------------------------------------------------------------
// RouteCache: concurrent Lookup/Insert churn across overlapping keys.

TEST(RouteCacheStress, ConcurrentLookupInsertChurn) {
  // Every key has exactly one correct value (a pure function of the key),
  // mirroring the production contract that admission and eviction change
  // *which* keys hit, never the bytes a hit returns. Any torn read or
  // cross-key mixup is a hard failure; TSan additionally checks the
  // shard-striping locking underneath.
  RouteCacheOptions options;
  options.num_shards = 4;  // fewer shards than threads: force contention
  options.capacity_bytes = 64u << 10;  // small: eviction churn is constant
  RouteCache cache(options);
  constexpr VertexId kKeySpace = 64;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> wrong_bytes{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const VertexId s =
            static_cast<VertexId>((i * 31 + t * 17) % kKeySpace);
        const RouteCacheKey key{s, s + 1, static_cast<uint8_t>(s % 2)};
        const RouteResult want = MakeResult(s, 3 + s % 5);
        RouteResult got;
        if (cache.Lookup(key, &got)) {
          if (!(got == want)) {
            wrong_bytes.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          cache.Insert(key, want);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(wrong_bytes.load(std::memory_order_acquire), 0u);
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.bytes, cache.CapacityBytes());
}

// ---------------------------------------------------------------------------
// RouteCache hot path: seqlock torn-read hammer on one slot.

TEST(RouteCacheStress, SeqlockHotSlotNeverServesATornEntry) {
  // One shard, one key, hence one hot slot: the writer republishes it
  // with epoch-derived payloads (varying length, cost, vertices) while 7
  // readers hammer Lookup. The seqlock contract under fire: a reader
  // observes a fully settled (key, stamp, payload) triple — the payload
  // a pure function of the returned stamp — or retries / falls back to
  // the locked map. A mixed entry (fields from two publishes) is a hard
  // failure here and, because the payload fields are relaxed atomics
  // under the fence protocol, a data race under TSan.
  RouteCacheOptions options;
  options.num_shards = 1;
  RouteCache cache(options);
  const RouteCacheKey key{7, 9, 1};
  auto versioned = [](WorldEpoch v) {
    return MakeResult(static_cast<VertexId>(v % 997),
                      3 + static_cast<size_t>(v % 9));
  };
  constexpr WorldEpoch kVersions = 20000;
  cache.Insert(key, versioned(1), 1, {1});

  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<bool> done{false};
  // Start barrier: on a single-core box the publish loop below can run
  // to completion before any reader is ever scheduled, leaving the race
  // untested (and hot_hits at 0). Each reader checks in after its first
  // lookup; the writer holds off churning until all have.
  std::atomic<int> readers_started{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads - 1; ++t) {
    readers.emplace_back([&] {
      RouteResult got;
      WorldEpoch stamp = 0;
      bool started = false;
      while (!done.load(std::memory_order_acquire)) {
        if (!cache.Lookup(key, &got, &stamp)) {
          // The key is resident throughout — the locked fallback can
          // never miss it (no world, no eviction pressure).
          misses.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!started) {
          // Check in only after a completed lookup: that lookup ran
          // against the still-quiescent slot, so it is a hot hit.
          started = true;
          readers_started.fetch_add(1, std::memory_order_relaxed);
        }
        if (!(got == versioned(stamp))) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (readers_started.load(std::memory_order_relaxed) < kThreads - 1) {
    std::this_thread::yield();
  }
  for (WorldEpoch v = 2; v <= kVersions; ++v) {
    cache.Insert(key, versioned(v), v, {1});
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(torn.load(std::memory_order_acquire), 0u);
  EXPECT_EQ(misses.load(std::memory_order_acquire), 0u);
  EXPECT_GT(cache.GetStats().hot_hits, 0u);  // the lock-free path engaged
  // Quiesced, the slot serves exactly the final publish.
  RouteResult got;
  WorldEpoch stamp = 0;
  ASSERT_TRUE(cache.Lookup(key, &got, &stamp));
  EXPECT_EQ(stamp, kVersions);
  EXPECT_TRUE(got == versioned(kVersions));
}

// ---------------------------------------------------------------------------
// RouteCache: dirty-set invalidation racing Insert/Lookup under eviction
// pressure (dynamic world).

/// Scripted wait-free world view: bumper threads publish dirty epochs
/// while workers validate entries against them.
class AtomicWorld final : public WorldViewIface {
 public:
  static constexpr RegionId kRegions = 8;

  WorldEpoch CurrentEpoch() const override {
    // Acquire pairs with Bump's release store (documented order).
    return epoch_.load(std::memory_order_acquire);
  }
  WorldEpoch LastDirtyEpoch(int period_index,
                            RegionId region) const override {
    if (region == kAllRegionsBucket) {
      // Acquire pairs with Bump's release store (documented order).
      return max_dirty_[period_index].load(std::memory_order_acquire);
    }
    if (region >= kRegions) return 0;
    // Acquire pairs with Bump's release store (documented order).
    return dirty_[period_index][region].load(std::memory_order_acquire);
  }
  WorldEpoch AcquireRead() override { return CurrentEpoch(); }
  void ReleaseRead() override {}
  int AddInvalidationListener(InvalidationListener) override { return 0; }
  void RemoveInvalidationListener(int) override {}

  void Bump(int period_index, RegionId region) {
    // Relaxed RMW allots the number; the release stores below publish it.
    const WorldEpoch e = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Release: pairs with the acquire loads in LastDirtyEpoch.
    dirty_[period_index][region].store(e, std::memory_order_release);
    WorldEpoch cur = max_dirty_[period_index].load(std::memory_order_relaxed);
    while (cur < e && !max_dirty_[period_index].compare_exchange_weak(
                          cur, e, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<WorldEpoch> epoch_{0};
  std::atomic<WorldEpoch> dirty_[kNumTimePeriods][kRegions] = {};
  std::atomic<WorldEpoch> max_dirty_[kNumTimePeriods] = {};
};

TEST(RouteCacheStress, DirtySetInvalidationRacesChurnUnderEviction) {
  // 6 worker threads churn Insert/Lookup through a cache small enough to
  // evict constantly while 2 bumper threads dirty regions, so selective
  // invalidation races both hits and evictions. Two contracts under
  // fire, checked value-level here and lock-level under TSan:
  //  - a hit's bytes are a pure function of its key (no torn entries);
  //  - no hit is served from an entry whose footprint was already dirty
  //    past its stamp *before* the lookup began (monotone dirty epochs
  //    make the pre-sampled floor a sound race-free lower bound).
  RouteCacheOptions options;
  options.num_shards = 4;              // fewer shards than threads
  options.capacity_bytes = 64u << 10;  // small: constant eviction churn
  RouteCache cache(options);
  AtomicWorld world;
  cache.SetWorld(&world);

  constexpr VertexId kKeySpace = 64;
  constexpr int kOpsPerThread = 4000;
  constexpr int kWorkers = kThreads - 2;
  constexpr int kBumpsPerThread = 2000;
  std::atomic<uint64_t> wrong_bytes{0};
  std::atomic<uint64_t> stale_serves{0};
  std::atomic<uint64_t> lookups{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const VertexId s =
            static_cast<VertexId>((i * 31 + t * 17) % kKeySpace);
        const RouteCacheKey key{s, s + 1, static_cast<uint8_t>(s % 2)};
        const RegionId region = s % AtomicWorld::kRegions;
        const RouteResult want = MakeResult(s, 3 + s % 5);
        const WorldEpoch floor = world.LastDirtyEpoch(key.period, region);
        RouteResult got;
        WorldEpoch stamp = 0;
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (cache.Lookup(key, &got, &stamp)) {
          if (!(got == want)) {
            wrong_bytes.fetch_add(1, std::memory_order_relaxed);
          }
          if (stamp < floor) {
            stale_serves.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          cache.Insert(key, want, world.CurrentEpoch(), {region});
        }
      }
    });
  }
  for (int b = 0; b < kThreads - kWorkers; ++b) {
    threads.emplace_back([&, b] {
      for (int i = 0; i < kBumpsPerThread; ++i) {
        world.Bump(i % kNumTimePeriods,
                   static_cast<RegionId>((i * 7 + b) % AtomicWorld::kRegions));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(wrong_bytes.load(std::memory_order_acquire), 0u);
  EXPECT_EQ(stale_serves.load(std::memory_order_acquire), 0u);
  RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_LE(stats.bytes, cache.CapacityBytes());

  // Quiesced: one eager sweep drains everything stale, after which every
  // resident entry is valid and a second sweep finds nothing.
  std::vector<RouteCache::StaleEntry> stale;
  cache.ExtractInvalid(&stale);
  for (const RouteCache::StaleEntry& e : stale) {
    EXPECT_EQ(e.stale.path.vertices.front(), e.key.s);  // intact bytes
  }
  std::vector<RouteCache::StaleEntry> again;
  cache.ExtractInvalid(&again);
  EXPECT_TRUE(again.empty());
}

// ---------------------------------------------------------------------------
// SingleFlight: many threads coalescing on few keys.

TEST(SingleFlightStress, EveryCallerGetsTheKeyedResult) {
  SingleFlight flights;
  constexpr VertexId kKeySpace = 8;  // fewer keys than threads: coalesce
  constexpr int kOpsPerThread = 1000;
  std::atomic<uint64_t> computes{0};
  std::atomic<uint64_t> wrong{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const VertexId s =
            static_cast<VertexId>((i * 13 + t * 7) % kKeySpace);
        const QueryKey key{s, s + 1, 0};
        const RouteResult want = MakeResult(s, 4);
        const Result<RouteResult> got = flights.Do(key, [&] {
          computes.fetch_add(1, std::memory_order_relaxed);
          // A non-trivial window during which followers can pile on.
          RouteResult r = MakeResult(s, 4);
          return Result<RouteResult>(std::move(r));
        });
        if (!got.ok() || !(*got == want)) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(wrong.load(std::memory_order_acquire), 0u);
  const SingleFlight::Stats stats = flights.GetStats();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(stats.leaders + stats.coalesced, total);
  EXPECT_EQ(stats.leaders, computes.load(std::memory_order_acquire));
  EXPECT_GE(stats.leaders, 1u);
}

// ---------------------------------------------------------------------------
// StitchMemo: concurrent Remember/Find on both tables.

TEST(StitchMemoStress, ConcurrentRememberFindStaysExact) {
  StitchMemo memo;
  constexpr uint32_t kEdges = 32;
  constexpr int kOpsPerThread = 3000;
  std::atomic<uint64_t> wrong{0};

  auto edge_path = [](uint32_t e) {
    return std::vector<VertexId>{e, e + 1, e + 2};
  };
  auto connector_path = [](VertexId from, VertexId to) {
    return std::vector<VertexId>{from, from + to, to};
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<VertexId> out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint32_t e = static_cast<uint32_t>((i * 11 + t) % kEdges);
        const int period = static_cast<int>(e % kNumTimePeriods);
        if (memo.FindEdgeChoice(period, e, e, e + 100, &out)) {
          if (out != edge_path(e)) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          memo.RememberEdgeChoice(period, e, e, e + 100, edge_path(e));
        }
        const VertexId from = e;
        const VertexId to = e + 5;
        if (memo.FindConnector(period, from, to, &out)) {
          if (out != connector_path(from, to)) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          memo.RememberConnector(period, from, to,
                                 connector_path(from, to));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(wrong.load(std::memory_order_acquire), 0u);
  const StitchMemo::Stats stats = memo.GetStats();
  EXPECT_GT(stats.edge_hits, 0u);
  EXPECT_GT(stats.connector_hits, 0u);
}

// ---------------------------------------------------------------------------
// ManualClock: waiters on distinct mutexes racing a stream of advances.

TEST(ManualClockStress, AdvancesNeverLoseWaiters) {
  // Each waiter parks on its own Mutex/CondVar with a staggered deadline
  // while the main thread advances virtual time in small steps. The
  // protocol under test is the registration/notify handshake: a waiter
  // whose deadline has been crossed must always wake and observe timeout,
  // no matter how its registration interleaves with advances.
  ManualClock clock;
  struct WaiterState {
    Mutex mu;
    CondVar cv;
    std::atomic<bool> timed_out{false};
  };
  std::vector<std::unique_ptr<WaiterState>> states;
  for (int t = 0; t < kThreads; ++t) {
    states.push_back(std::make_unique<WaiterState>());
  }

  std::vector<std::thread> waiters;
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&, t] {
      WaiterState& st = *states[t];
      const int64_t deadline = 100 * (t + 1);
      MutexLock lock(st.mu);
      while (clock.WaitUntil(st.cv, st.mu, deadline) !=
             std::cv_status::timeout) {
      }
      st.timed_out.store(true, std::memory_order_release);
    });
  }

  // Wait until every thread is parked, then cross all deadlines in
  // deliberately small, frequent steps (each advance re-walks the waiter
  // list and skips the ones already gone).
  while (clock.NumWaiters() < static_cast<size_t>(kThreads)) {
    std::this_thread::yield();
  }
  for (int step = 0; step < 100; ++step) clock.AdvanceMicros(10);

  for (std::thread& th : waiters) th.join();
  for (const auto& st : states) {
    EXPECT_TRUE(st->timed_out.load(std::memory_order_acquire));
  }
  EXPECT_EQ(clock.NumWaiters(), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool: concurrent parallel sections from many external threads.

TEST(ThreadPoolStress, ConcurrentSectionsStayIsolated) {
  // 8 outer threads each run ParallelFor sections against the global
  // pool. Sections must serialize through admission without mixing
  // iterations across sections or losing any.
  std::vector<std::thread> threads;
  std::atomic<uint64_t> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        std::vector<int> out(128, -1);
        ParallelFor(
            out.size(),
            [&](size_t i) { out[i] = t; },
            /*num_threads=*/4);
        for (const int v : out) {
          if (v != t) bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(std::memory_order_acquire), 0u);
}

// ---------------------------------------------------------------------------
// StreamRouter + ServingRouter on a real (small) pipeline.

class StreamStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = CityDataset(0.04);
    spec.network.city_width_m = 7000;
    spec.network.city_height_m = 6000;
    auto built = BuildDataset(spec);
    L2R_CHECK(built.ok());
    dataset_ = new BuiltDataset(std::move(built).value());
    L2ROptions options;
    auto router = L2RRouter::Build(&dataset_->world.net,
                                   dataset_->split.train, options);
    L2R_CHECK(router.ok());
    router_ = router->release();
  }

  static void TearDownTestSuite() {
    delete router_;
    router_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::vector<BatchQuery> MakeQueries(size_t cap) {
    std::vector<BatchQuery> queries;
    for (const MatchedTrajectory& t : dataset_->split.test) {
      if (queries.size() >= cap) break;
      if (t.path.size() < 3 || t.path.front() == t.path.back()) continue;
      queries.push_back(
          BatchQuery{t.path.front(), t.path.back(), t.departure_time});
    }
    return queries;
  }

  static BuiltDataset* dataset_;
  static L2RRouter* router_;
};

BuiltDataset* StreamStressTest::dataset_ = nullptr;
L2RRouter* StreamStressTest::router_ = nullptr;

TEST_F(StreamStressTest, ConcurrentSubmittersThroughServingStack) {
  // 8 submitter threads race Submit against deadline/size closes on the
  // system clock, through the full serving stack (cache + single-flight).
  // Every accepted query must complete exactly once with a result that is
  // byte-identical to the single-threaded cold answer for its key.
  const std::vector<BatchQuery> queries = MakeQueries(24);
  ASSERT_GE(queries.size(), 8u);

  // Ground truth from the bare router, one query at a time.
  std::vector<Result<RouteResult>> want;
  {
    L2RQueryContext ctx = router_->MakeContext();
    for (const BatchQuery& q : queries) {
      want.push_back(router_->Route(&ctx, q.s, q.d, q.departure_time));
    }
  }

  ServingRouter serving(router_);
  StreamOptions options;
  options.max_batch = 5;  // mix size closes and deadline closes
  options.batch_deadline_us = 200;
  options.num_threads = 2;
  StreamRouter stream(&serving, options);

  constexpr int kRoundsPerThread = 25;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const size_t qi = (static_cast<size_t>(t) * kRoundsPerThread +
                           static_cast<size_t>(round)) %
                          queries.size();
        const Result<RouteResult>& expect = want[qi];
        const bool ok = stream.Submit(
            queries[qi], [&wrong, &expect](const StreamResult& r) {
              const bool same =
                  r.result.ok() == expect.ok() &&
                  (!r.result.ok() || *r.result == *expect);
              if (!same) wrong.fetch_add(1, std::memory_order_relaxed);
            });
        ASSERT_TRUE(ok);  // nothing shuts the stream down while we submit
        accepted.fetch_add(1, std::memory_order_release);
      }
    });
  }
  for (std::thread& th : submitters) th.join();

  const uint64_t total = accepted.load(std::memory_order_acquire);
  while (stream.GetStats().completed < total) std::this_thread::yield();
  stream.Shutdown();

  EXPECT_EQ(wrong.load(std::memory_order_acquire), 0u);
  const StreamRouter::Stats stats = stream.GetStats();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.failed_on_shutdown, 0u);
  // The serving layer saw every query (dedup may collapse duplicates
  // inside a batch before they reach it, so <=), and coalescing /
  // caching actually engaged across the concurrent submitters.
  const ServingRouter::Stats serve_stats = serving.GetStats();
  EXPECT_GT(serve_stats.queries, 0u);
  EXPECT_LE(serve_stats.queries, total);
  EXPECT_EQ(serve_stats.cache.hits + serve_stats.cache.misses,
            serve_stats.queries);
}

class OverloadShedStressTest
    : public StreamStressTest,
      public ::testing::WithParamInterface<unsigned> {};

TEST_P(OverloadShedStressTest, ConservesCallbacks) {
  // 8 submitter threads flood the stream on the system clock while the
  // overload controller (tiny shed depths, trip after one tick) flips
  // admission shedding and the budget scale under them, and a chaos layer
  // injects backend errors under the drain. Parameterized over the
  // drain-thread count: with 4 batchers the drains genuinely overlap, so
  // the controller-tick arbitration, the shed bookkeeping, and the
  // shutdown fail-path all race each other. The invariants that must
  // survive: every accepted query gets exactly one callback, every shed
  // callback carries kResourceExhausted, and submitted == completed +
  // shed + failed_on_shutdown at any drain count.
  const unsigned num_drains = GetParam();
  const std::vector<BatchQuery> queries = MakeQueries(16);
  ASSERT_GE(queries.size(), 8u);

  OverloadControllerOptions oc;
  oc.control_period_us = 200;  // many ticks per run
  oc.slo_queue_wait_us = 500;
  oc.min_batch_deadline_us = 50;
  oc.max_batch_deadline_us = 200;
  oc.shed_depth = 16;  // small enough that the flood trips it for real
  oc.resume_depth = 4;
  oc.panic_depth = 64;
  oc.trip_ticks = 1;
  oc.release_ticks = 1;
  OverloadController controller(oc);

  ServingRouterOptions serve_options;
  serve_options.deadline.fallback_budget_us = 25;
  ServingRouter serving(router_, serve_options);
  ChaosOptions chaos_options;
  chaos_options.seed = 11;
  chaos_options.error_rate = 0.2;
  chaos_options.degrade_rate = 0.2;
  ChaosService chaos(&serving, chaos_options);

  StreamOptions options;
  options.max_batch = 8;
  options.num_threads = 2;
  options.num_drain_threads = num_drains;
  options.dedup = false;  // every served slot must reach the chaos layer
  options.overload = &controller;
  options.budget_sink = [&serving](double scale) {
    serving.SetBudgetScale(scale);
  };
  StreamRouter stream(&chaos, options);

  constexpr int kRoundsPerThread = 40;
  constexpr size_t kTotal =
      static_cast<size_t>(kThreads) * kRoundsPerThread;
  std::vector<std::atomic<int>> callbacks(kTotal);
  std::atomic<uint64_t> shed_seen{0};
  std::atomic<uint64_t> shed_bad_status{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const size_t slot = static_cast<size_t>(t) * kRoundsPerThread +
                            static_cast<size_t>(round);
        BatchQuery q = queries[slot % queries.size()];
        q.query_class =
            slot % 3 == 0 ? QueryClass::kBulk : QueryClass::kInteractive;
        const bool ok = stream.Submit(
            q, [&callbacks, &shed_seen, &shed_bad_status,
                slot](const StreamResult& r) {
              callbacks[slot].fetch_add(1, std::memory_order_relaxed);
              if (!r.shed) return;
              shed_seen.fetch_add(1, std::memory_order_relaxed);
              if (r.result.status().code() !=
                  StatusCode::kResourceExhausted) {
                shed_bad_status.fetch_add(1, std::memory_order_relaxed);
              }
            });
        ASSERT_TRUE(ok);
      }
    });
  }
  for (std::thread& th : submitters) th.join();

  for (;;) {
    const StreamRouter::Stats s = stream.GetStats();
    if (s.completed + s.shed + s.failed_on_shutdown >= kTotal) break;
    std::this_thread::yield();
  }
  stream.Shutdown();

  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(callbacks[i].load(std::memory_order_acquire), 1)
        << "slot " << i;
  }
  EXPECT_EQ(shed_bad_status.load(std::memory_order_acquire), 0u);
  const StreamRouter::Stats stats = stream.GetStats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.shed + stats.failed_on_shutdown);
  EXPECT_EQ(stats.shed, shed_seen.load(std::memory_order_acquire));
  EXPECT_EQ(stats.shed_by_class[0] + stats.shed_by_class[1], stats.shed);
  EXPECT_EQ(stats.completed_by_class[0] + stats.completed_by_class[1],
            stats.completed);
  // The controller really ran and the chaos layer really misbehaved.
  EXPECT_GT(controller.GetStats().ticks, 0u);
  EXPECT_EQ(chaos.GetStats().queries, stats.completed);
  EXPECT_EQ(stats.drain_threads, num_drains);
}

INSTANTIATE_TEST_SUITE_P(DrainLadder, OverloadShedStressTest,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "Drains" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace l2r
