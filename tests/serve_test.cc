#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/batch_router.h"
#include "core/l2r.h"
#include "eval/datasets.h"
#include "routing/dijkstra.h"
#include "serve/admission_policy.h"
#include "serve/clock.h"
#include "serve/deadline_budget.h"
#include "serve/route_cache.h"
#include "serve/serving_router.h"
#include "serve/single_flight.h"
#include "serve/stitch_memo.h"
#include "test_util.h"

namespace l2r {
namespace {

// ---------------------------------------------------------------------------
// RouteCache units (no dataset needed).

RouteResult MakeResult(VertexId a, size_t hops) {
  RouteResult r;
  r.path.vertices.resize(hops + 1);
  for (size_t i = 0; i <= hops; ++i) {
    r.path.vertices[i] = a + static_cast<VertexId>(i);
  }
  r.path.cost = static_cast<double>(hops);
  r.method = RouteMethod::kRegionGraph;
  r.region_hops = hops;
  return r;
}

RouteResult MakeDegradedResult(VertexId a, size_t hops) {
  RouteResult r = MakeResult(a, hops);
  r.budget_degraded = true;
  return r;
}

TEST(RouteCacheTest, HitReturnsExactInsertedValue) {
  RouteCache cache;
  const RouteCacheKey key{7, 9, 1};
  const RouteResult want = MakeResult(7, 5);
  RouteResult got;
  EXPECT_FALSE(cache.Lookup(key, &got));
  cache.Insert(key, want);
  ASSERT_TRUE(cache.Lookup(key, &got));
  EXPECT_TRUE(got == want);
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(RouteCacheTest, PeriodIsPartOfTheKey) {
  RouteCache cache;
  const RouteResult offpeak = MakeResult(1, 3);
  const RouteResult peak = MakeResult(100, 4);
  cache.Insert(RouteCacheKey{1, 2, 0}, offpeak);
  cache.Insert(RouteCacheKey{1, 2, 1}, peak);
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(RouteCacheKey{1, 2, 0}, &got));
  EXPECT_TRUE(got == offpeak);
  ASSERT_TRUE(cache.Lookup(RouteCacheKey{1, 2, 1}, &got));
  EXPECT_TRUE(got == peak);
}

TEST(RouteCacheTest, LruEvictionRespectsByteCapacityAndRecency) {
  const RouteResult r = MakeResult(0, 8);
  const size_t entry = RouteCache::EntryBytes(r);
  RouteCacheOptions options;
  options.num_shards = 1;         // deterministic LRU order
  options.hot_slots_per_shard = 0;  // exact LRU: hot hits skip recency
  options.capacity_bytes = 3 * entry;
  RouteCache cache(options);
  auto key = [](VertexId s) { return RouteCacheKey{s, s + 1, 0}; };
  cache.Insert(key(1), MakeResult(1, 8));
  cache.Insert(key(2), MakeResult(2, 8));
  cache.Insert(key(3), MakeResult(3, 8));
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(key(1), &got));  // touch 1: now 2 is LRU
  cache.Insert(key(4), MakeResult(4, 8));   // evicts 2
  EXPECT_TRUE(cache.Lookup(key(1), &got));
  EXPECT_FALSE(cache.Lookup(key(2), &got));
  EXPECT_TRUE(cache.Lookup(key(3), &got));
  EXPECT_TRUE(cache.Lookup(key(4), &got));
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
}

TEST(RouteCacheTest, ByteAccountingStaysExactUnderEvictionChurn) {
  // The byte budget is charged from the stored copy, so source vectors
  // carrying excess capacity must not leak phantom bytes into the shard
  // accounting as entries churn through eviction.
  RouteCacheOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 3 * RouteCache::EntryBytes(MakeResult(0, 8));
  RouteCache cache(options);
  for (VertexId s = 0; s < 200; ++s) {
    RouteResult r = MakeResult(s, 8);
    r.path.vertices.reserve(64);  // excess caller-side capacity
    cache.Insert(RouteCacheKey{s, s + 1, 0}, r);
  }
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 3u);  // full occupancy survives the churn
  EXPECT_LE(stats.bytes, options.capacity_bytes);
  EXPECT_EQ(stats.evictions, 200u - 3u);
  // The most recent entries are still resident and intact.
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(RouteCacheKey{199, 200, 0}, &got));
  EXPECT_TRUE(got == MakeResult(199, 8));
}

TEST(RouteCacheTest, OversizeEntryIsNotCached) {
  RouteCacheOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 64;  // smaller than any entry
  RouteCache cache(options);
  cache.Insert(RouteCacheKey{1, 2, 0}, MakeResult(1, 50));
  RouteResult got;
  EXPECT_FALSE(cache.Lookup(RouteCacheKey{1, 2, 0}, &got));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(RouteCacheTest, ConcurrentMixedLoadStaysConsistent) {
  RouteCacheOptions options;
  options.num_shards = 4;
  options.capacity_bytes = 1u << 16;  // small: forces eviction under load
  RouteCache cache(options);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> value_mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &value_mismatches, t] {
      RouteResult got;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const VertexId s = static_cast<VertexId>((t * 7 + i) % 97);
        const RouteCacheKey key{s, s + 1, static_cast<uint8_t>(i % 2)};
        if (cache.Lookup(key, &got)) {
          // Values are keyed deterministically, so a hit must match what
          // any thread inserted for this key.
          if (got.path.vertices.front() != s) ++value_mismatches;
        } else {
          cache.Insert(key, MakeResult(s, 4));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(value_mismatches.load(), 0u);
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
}

// ---------------------------------------------------------------------------
// RouteCache hot read path (seqlock slots). The locked map stays the
// source of truth; these pin that the lock-free accelerator serves
// byte-identical values and maintains its slots across insert, evict,
// invalidate, and Clear.

TEST(RouteCacheTest, HotHitIsByteIdenticalAndCounted) {
  RouteCache cache;  // default: hot path enabled
  const RouteCacheKey key{7, 9, 1};
  const RouteResult want = MakeResult(7, 5);
  cache.Insert(key, want);  // publishes the hot slot
  RouteResult got;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.Lookup(key, &got));
    EXPECT_TRUE(got == want);  // byte-identical to the locked value
  }
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.hot_hits, 3u);  // every hit skipped the mutex
  EXPECT_EQ(stats.misses, 0u);
}

TEST(RouteCacheTest, OversizeFootprintStaysOnTheLockedPath) {
  // Entries beyond the inline hot-slot capacity (64 path vertices) are
  // still cached and served correctly — just never through the hot path.
  RouteCache cache;
  const RouteCacheKey key{1, 2, 0};
  const RouteResult big = MakeResult(1, 100);  // 101 vertices > 64
  cache.Insert(key, big);
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(key, &got));
  EXPECT_TRUE(got == big);
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.hot_hits, 0u);
}

TEST(RouteCacheTest, EvictionClearsTheVictimsHotSlot) {
  const size_t entry = RouteCache::EntryBytes(MakeResult(0, 8));
  RouteCacheOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 2 * entry;
  RouteCache cache(options);
  auto key = [](VertexId s) { return RouteCacheKey{s, s + 1, 0}; };
  cache.Insert(key(1), MakeResult(1, 8));
  cache.Insert(key(2), MakeResult(2, 8));
  cache.Insert(key(3), MakeResult(3, 8));  // evicts 1 (never touched)
  RouteResult got;
  // The victim must miss — its hot slot may not keep serving it.
  EXPECT_FALSE(cache.Lookup(key(1), &got));
  EXPECT_TRUE(cache.Lookup(key(2), &got));
  EXPECT_TRUE(cache.Lookup(key(3), &got));
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(RouteCacheTest, ClearEmptiesHotSlotsToo) {
  RouteCache cache;
  const RouteCacheKey key{7, 9, 1};
  cache.Insert(key, MakeResult(7, 5));
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(key, &got));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(key, &got));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

// ---------------------------------------------------------------------------
// RouteCache epoch validation (dynamic world). A scripted WorldViewIface
// stands in for the update channel so the invalidation predicate can be
// exercised one dirty event at a time.

class FakeWorld final : public WorldViewIface {
 public:
  WorldEpoch CurrentEpoch() const override { return epoch_; }
  WorldEpoch LastDirtyEpoch(int period_index,
                            RegionId region) const override {
    if (region == kAllRegionsBucket) return max_dirty_[period_index];
    const auto it = dirty_[period_index].find(region);
    return it == dirty_[period_index].end() ? 0 : it->second;
  }
  WorldEpoch AcquireRead() override { return epoch_; }
  void ReleaseRead() override {}
  int AddInvalidationListener(InvalidationListener) override { return 0; }
  void RemoveInvalidationListener(int) override {}

  void MarkDirty(int period_index, RegionId region, WorldEpoch epoch) {
    dirty_[period_index][region] = epoch;
    if (epoch > max_dirty_[period_index]) max_dirty_[period_index] = epoch;
    if (epoch > epoch_) epoch_ = epoch;
  }

 private:
  WorldEpoch epoch_ = 0;
  std::unordered_map<RegionId, WorldEpoch> dirty_[kNumTimePeriods];
  WorldEpoch max_dirty_[kNumTimePeriods] = {0, 0};
};

TEST(RouteCacheTest, EpochInvalidationIsSelectivePerFootprint) {
  FakeWorld world;
  RouteCache cache;
  cache.SetWorld(&world);
  const RouteCacheKey touched{1, 2, 0};
  const RouteCacheKey untouched{3, 4, 0};
  cache.Insert(touched, MakeResult(1, 4), 0, {1, 2});
  cache.Insert(untouched, MakeResult(3, 4), 0, {5});

  world.MarkDirty(0, 2, 1);  // region 2: touches only the first footprint
  RouteResult got;
  WorldEpoch epoch = 99;
  EXPECT_FALSE(cache.Lookup(touched, &got));  // erased, never served
  ASSERT_TRUE(cache.Lookup(untouched, &got, &epoch));
  EXPECT_TRUE(got == MakeResult(3, 4));
  EXPECT_EQ(epoch, 0u);  // stale-but-valid stamp, surfaced for accounting
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // Reinserting on the new epoch makes the key servable again.
  cache.Insert(touched, MakeResult(9, 4), 1, {1, 2});
  ASSERT_TRUE(cache.Lookup(touched, &got, &epoch));
  EXPECT_TRUE(got == MakeResult(9, 4));
  EXPECT_EQ(epoch, 1u);
}

TEST(RouteCacheTest, HotPathNeverServesAnInvalidatedEntry) {
  // The hot read path validates the entry's footprint against the world's
  // dirty epochs before serving — a slot published before an update may
  // not satisfy reads after it.
  FakeWorld world;
  RouteCache cache;  // hot path enabled
  cache.SetWorld(&world);
  const RouteCacheKey key{1, 2, 0};
  cache.Insert(key, MakeResult(1, 4), 0, {2});
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(key, &got));  // warm: served hot
  EXPECT_EQ(cache.GetStats().hot_hits, 1u);
  world.MarkDirty(0, 2, 1);
  EXPECT_FALSE(cache.Lookup(key, &got));  // hot probe rejects, map erases
  // Reinsertion on the new epoch re-publishes the slot.
  cache.Insert(key, MakeResult(9, 4), 1, {2});
  ASSERT_TRUE(cache.Lookup(key, &got));
  EXPECT_TRUE(got == MakeResult(9, 4));
}

TEST(RouteCacheTest, PeriodsInvalidateIndependently) {
  FakeWorld world;
  RouteCache cache;
  cache.SetWorld(&world);
  cache.Insert(RouteCacheKey{1, 2, 0}, MakeResult(1, 3), 0, {7});
  cache.Insert(RouteCacheKey{1, 2, 1}, MakeResult(100, 3), 0, {7});
  world.MarkDirty(1, 7, 1);  // peak only
  RouteResult got;
  EXPECT_TRUE(cache.Lookup(RouteCacheKey{1, 2, 0}, &got));
  EXPECT_FALSE(cache.Lookup(RouteCacheKey{1, 2, 1}, &got));
}

TEST(RouteCacheTest, AllRegionsFootprintDiesOnAnyDirtyInItsPeriod) {
  FakeWorld world;
  RouteCache cache;
  cache.SetWorld(&world);
  const RouteCacheKey key{1, 2, 0};
  // Degraded results carry the whole-period sentinel footprint (their
  // degrade bit depends on exploration, not just the final path).
  cache.Insert(key, MakeDegradedResult(1, 4), 0, {kAllRegionsBucket});
  world.MarkDirty(0, 42, 1);  // any region of the period suffices
  RouteResult got;
  EXPECT_FALSE(cache.Lookup(key, &got));
  EXPECT_EQ(cache.GetStats().invalidated, 1u);
}

TEST(RouteCacheTest, InsertPrefersTheNewestEpochStamp) {
  FakeWorld world;
  RouteCache cache;
  cache.SetWorld(&world);
  const RouteCacheKey key{1, 2, 0};
  cache.Insert(key, MakeResult(1, 4), 2, {3});
  cache.Insert(key, MakeResult(50, 4), 1, {3});  // stale racer: ignored
  RouteResult got;
  WorldEpoch epoch = 0;
  ASSERT_TRUE(cache.Lookup(key, &got, &epoch));
  EXPECT_TRUE(got == MakeResult(1, 4));
  EXPECT_EQ(epoch, 2u);
  cache.Insert(key, MakeResult(70, 4), 3, {3});  // newer: replaces
  ASSERT_TRUE(cache.Lookup(key, &got, &epoch));
  EXPECT_TRUE(got == MakeResult(70, 4));
  EXPECT_EQ(epoch, 3u);
}

TEST(RouteCacheTest, ExtractInvalidSweepsExactlyTheStaleEntries) {
  FakeWorld world;
  RouteCache cache;
  cache.SetWorld(&world);
  cache.Insert(RouteCacheKey{1, 2, 0}, MakeResult(1, 4), 0, {1});
  cache.Insert(RouteCacheKey{3, 4, 0}, MakeResult(3, 4), 0, {2});
  cache.Insert(RouteCacheKey{5, 6, 0}, MakeResult(5, 4), 0, {1, 9});
  world.MarkDirty(0, 1, 1);

  std::vector<RouteCache::StaleEntry> stale;
  cache.ExtractInvalid(&stale);
  ASSERT_EQ(stale.size(), 2u);
  for (const RouteCache::StaleEntry& entry : stale) {
    EXPECT_TRUE(entry.key == (RouteCacheKey{1, 2, 0}) ||
                entry.key == (RouteCacheKey{5, 6, 0}));
    // The swept value seeds the repair pass's bounded re-search.
    EXPECT_EQ(entry.stale.path.vertices.front(), entry.key.s);
  }
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidated, 2u);
  EXPECT_EQ(stats.entries, 1u);
  RouteResult got;
  EXPECT_TRUE(cache.Lookup(RouteCacheKey{3, 4, 0}, &got));
  // A second sweep finds nothing left to repair.
  stale.clear();
  cache.ExtractInvalid(&stale);
  EXPECT_TRUE(stale.empty());
}

// ---------------------------------------------------------------------------
// AdmissionPolicy units.

TEST(AdmissionPolicyTest, FullFidelityResultsAlwaysAdmitted) {
  for (const DegradedAdmission mode :
       {DegradedAdmission::kTagged, DegradedAdmission::kNever,
        DegradedAdmission::kAfterNMisses}) {
    AdmissionOptions options;
    options.degraded = mode;
    AdmissionPolicy policy(options);
    EXPECT_TRUE(policy.Admit(QueryKey{1, 2, 0}, MakeResult(1, 4)));
    const AdmissionPolicy::Stats stats = policy.GetStats();
    EXPECT_EQ(stats.degraded_admitted, 0u);
    EXPECT_EQ(stats.degraded_rejected, 0u);
  }
}

TEST(AdmissionPolicyTest, TaggedModeAdmitsDegraded) {
  AdmissionPolicy policy;  // default: kTagged
  EXPECT_TRUE(policy.Admit(QueryKey{1, 2, 0}, MakeDegradedResult(1, 4)));
  EXPECT_EQ(policy.GetStats().degraded_admitted, 1u);
}

TEST(AdmissionPolicyTest, NeverModeRejectsDegraded) {
  AdmissionOptions options;
  options.degraded = DegradedAdmission::kNever;
  AdmissionPolicy policy(options);
  EXPECT_FALSE(policy.Admit(QueryKey{1, 2, 0}, MakeDegradedResult(1, 4)));
  EXPECT_FALSE(policy.Admit(QueryKey{1, 2, 0}, MakeDegradedResult(1, 4)));
  const AdmissionPolicy::Stats stats = policy.GetStats();
  EXPECT_EQ(stats.degraded_admitted, 0u);
  EXPECT_EQ(stats.degraded_rejected, 2u);
}

TEST(AdmissionPolicyTest, AfterNMissesGatesPerKeyFrequency) {
  AdmissionOptions options;
  options.degraded = DegradedAdmission::kAfterNMisses;
  options.admit_after_misses = 3;
  AdmissionPolicy policy(options);
  const QueryKey hot{1, 2, 0};
  const QueryKey cold{3, 4, 1};
  const RouteResult degraded = MakeDegradedResult(1, 4);
  // Observations 1 and 2 are rejected; the 3rd opens the gate.
  EXPECT_FALSE(policy.Admit(hot, degraded));
  EXPECT_FALSE(policy.Admit(hot, degraded));
  EXPECT_TRUE(policy.Admit(hot, degraded));
  // Once hot, the key stays admitted.
  EXPECT_TRUE(policy.Admit(hot, degraded));
  // Frequency is per key: a different key starts cold.
  EXPECT_FALSE(policy.Admit(cold, degraded));
  const AdmissionPolicy::Stats stats = policy.GetStats();
  EXPECT_EQ(stats.degraded_admitted, 2u);
  EXPECT_EQ(stats.degraded_rejected, 3u);
  // Clear resets the sketch: the hot key must re-earn admission.
  policy.Clear();
  EXPECT_FALSE(policy.Admit(hot, degraded));
}

TEST(RouteCacheTest, NeverModeKeepsDegradedResultsOut) {
  RouteCacheOptions options;
  options.admission.degraded = DegradedAdmission::kNever;
  RouteCache cache(options);
  cache.Insert(RouteCacheKey{1, 2, 0}, MakeDegradedResult(1, 4));
  RouteResult got;
  EXPECT_FALSE(cache.Lookup(RouteCacheKey{1, 2, 0}, &got));
  // Full-fidelity results for the same key still enter.
  cache.Insert(RouteCacheKey{1, 2, 0}, MakeResult(1, 4));
  EXPECT_TRUE(cache.Lookup(RouteCacheKey{1, 2, 0}, &got));
  EXPECT_FALSE(got.budget_degraded);
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.admission.degraded_rejected, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(RouteCacheTest, AfterNMissesAdmitsDegradedOnSecondMiss) {
  RouteCacheOptions options;
  options.admission.degraded = DegradedAdmission::kAfterNMisses;
  options.admission.admit_after_misses = 2;
  RouteCache cache(options);
  const RouteCacheKey key{1, 2, 0};
  const RouteResult degraded = MakeDegradedResult(1, 4);
  RouteResult got;
  cache.Insert(key, degraded);  // miss 1: gated out
  EXPECT_FALSE(cache.Lookup(key, &got));
  cache.Insert(key, degraded);  // miss 2: admitted
  ASSERT_TRUE(cache.Lookup(key, &got));
  // The degrade tag travels in the cached value.
  EXPECT_TRUE(got.budget_degraded);
  EXPECT_TRUE(got == degraded);
}

TEST(RouteCacheTest, DegradedEntriesParticipateInLruEviction) {
  // Admitted degraded entries are ordinary residents: they occupy bytes,
  // age through the LRU list, and are evicted like full-fidelity ones.
  const size_t entry = RouteCache::EntryBytes(MakeResult(0, 8));
  RouteCacheOptions options;
  options.num_shards = 1;         // deterministic LRU order
  options.hot_slots_per_shard = 0;  // exact LRU: hot hits skip recency
  options.capacity_bytes = 2 * entry;
  RouteCache cache(options);  // kTagged: degraded entries admitted
  auto key = [](VertexId s) { return RouteCacheKey{s, s + 1, 0}; };
  cache.Insert(key(1), MakeDegradedResult(1, 8));
  cache.Insert(key(2), MakeResult(2, 8));
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(key(1), &got));
  EXPECT_TRUE(got.budget_degraded);
  // 2 is now LRU; a third insert evicts it and keeps the degraded entry.
  cache.Insert(key(3), MakeResult(3, 8));
  EXPECT_TRUE(cache.Lookup(key(1), &got));
  EXPECT_FALSE(cache.Lookup(key(2), &got));
  EXPECT_TRUE(cache.Lookup(key(3), &got));
  // And a degraded entry is itself evictable once least-recently used.
  cache.Insert(key(4), MakeResult(4, 8));  // evicts 1 (LRU after misses)
  EXPECT_FALSE(cache.Lookup(key(1), &got));
  EXPECT_EQ(cache.GetStats().evictions, 2u);
}

// ---------------------------------------------------------------------------
// SingleFlight units.

TEST(SingleFlightTest, FollowerReceivesLeadersResultWithoutRecomputing) {
  SingleFlight flights;
  const QueryKey key{1, 2, 0};
  const RouteResult value = MakeResult(5, 3);
  std::atomic<int> computes{0};
  std::atomic<bool> leader_in_compute{false};
  std::atomic<bool> release_leader{false};

  std::thread leader([&] {
    const auto r = flights.Do(key, [&]() -> Result<RouteResult> {
      computes.fetch_add(1);
      leader_in_compute.store(true);
      while (!release_leader.load()) std::this_thread::yield();
      return value;
    });
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(*r == value);
  });
  // Hold the leader inside compute() so the follower must coalesce.
  while (!leader_in_compute.load()) std::this_thread::yield();
  std::thread follower([&] {
    const auto r = flights.Do(key, [&]() -> Result<RouteResult> {
      computes.fetch_add(1);
      return value;
    });
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(*r == value);
  });
  // Join() counts the follower before it blocks, so waiting on the stat
  // makes the schedule deterministic: release only after coalescing.
  while (flights.GetStats().coalesced < 1) std::this_thread::yield();
  release_leader.store(true);
  leader.join();
  follower.join();

  EXPECT_EQ(computes.load(), 1);
  const SingleFlight::Stats stats = flights.GetStats();
  EXPECT_EQ(stats.leaders, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
}

TEST(SingleFlightTest, ErrorsFanOutToFollowers) {
  SingleFlight flights;
  const QueryKey key{1, 2, 0};
  std::atomic<bool> leader_in_compute{false};
  std::atomic<bool> release_leader{false};

  std::thread leader([&] {
    const auto r = flights.Do(key, [&]() -> Result<RouteResult> {
      leader_in_compute.store(true);
      while (!release_leader.load()) std::this_thread::yield();
      return Result<RouteResult>(Status::NotFound("no route"));
    });
    EXPECT_FALSE(r.ok());
  });
  while (!leader_in_compute.load()) std::this_thread::yield();
  std::thread follower([&] {
    const auto r = flights.Do(key, [&]() -> Result<RouteResult> {
      ADD_FAILURE() << "follower must not compute";
      return Result<RouteResult>(Status::Internal("unreachable"));
    });
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  });
  while (flights.GetStats().coalesced < 1) std::this_thread::yield();
  release_leader.store(true);
  leader.join();
  follower.join();
}

TEST(SingleFlightTest, DistinctKeysDoNotCoalesce) {
  SingleFlight flights;
  // Sequential calls: each flight completes before the next joins, so
  // every call leads — including repeat calls for the same key (flights
  // are removed at publish; lasting reuse is the cache's job).
  for (int i = 0; i < 3; ++i) {
    const QueryKey key{static_cast<VertexId>(i), 9, 0};
    const auto r = flights.Do(key, [&]() -> Result<RouteResult> {
      return MakeResult(static_cast<VertexId>(i), 2);
    });
    ASSERT_TRUE(r.ok());
  }
  const auto again = flights.Do(QueryKey{0, 9, 0}, [&] {
    return Result<RouteResult>(MakeResult(0, 2));
  });
  ASSERT_TRUE(again.ok());
  const SingleFlight::Stats stats = flights.GetStats();
  EXPECT_EQ(stats.leaders, 4u);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST(SingleFlightTest, DifferentEpochsOfOneKeyNeverCoalesce) {
  SingleFlight flights;
  const QueryKey key{1, 2, 0};
  std::atomic<bool> leader_started{false};
  std::atomic<bool> release_leader{false};
  std::thread leader([&] {
    const auto r = flights.Do(key, WorldEpoch{0}, [&] {
      leader_started.store(true);
      while (!release_leader.load()) std::this_thread::yield();
      return Result<RouteResult>(MakeResult(1, 2));
    });
    EXPECT_TRUE(r.ok());
  });
  while (!leader_started.load()) std::this_thread::yield();
  // The epoch-1 call for the same key must start its own flight, not
  // join the in-progress epoch-0 one (joining would deadlock right here:
  // the epoch-0 leader publishes only after this call returns).
  const auto r = flights.Do(key, WorldEpoch{1}, [&] {
    return Result<RouteResult>(MakeResult(9, 3));
  });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r == MakeResult(9, 3));
  release_leader.store(true);
  leader.join();
  const SingleFlight::Stats stats = flights.GetStats();
  EXPECT_EQ(stats.leaders, 2u);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST(SingleFlightTest, ConcurrentMixedKeysStayConsistent) {
  SingleFlight flights;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&flights, &mismatches, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const VertexId s = static_cast<VertexId>((t * 13 + i) % 17);
        const QueryKey key{s, s + 1, static_cast<uint8_t>(i % 2)};
        const size_t hops = 2 + s % 3;
        const auto r = flights.Do(key, [s, hops]() -> Result<RouteResult> {
          return MakeResult(s, hops);
        });
        // Leader or follower, the result must be the deterministic
        // function of the key.
        if (!r.ok() || !(*r == MakeResult(s, hops))) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const SingleFlight::Stats stats = flights.GetStats();
  EXPECT_EQ(stats.leaders + stats.coalesced,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(SingleFlightTest, DuplicateBurstConservesLeaderAndCoalescedCounts) {
  // 8 threads hammer ONE key: maximal contention on the leader-election
  // CAS window. The leaders_/coalesced_ tallies are relaxed atomics (see
  // the order comment in single_flight.h) — this pins the conservation
  // law they promise: every Do() call is counted exactly once, as leader
  // or as coalesced, never both, never dropped.
  SingleFlight flights;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  const QueryKey key{1, 2, 0};
  const RouteResult value = MakeResult(1, 4);
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&flights, &mismatches, &key, &value] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto r = flights.Do(key, [&value]() -> Result<RouteResult> {
          return value;
        });
        if (!r.ok() || !(*r == value)) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const SingleFlight::Stats stats = flights.GetStats();
  EXPECT_EQ(stats.leaders + stats.coalesced,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // At least one flight ran (a duplicate burst coalesces, but sequential
  // stragglers each lead — both sides of the ledger must be populated).
  EXPECT_GE(stats.leaders, 1u);
}

// ---------------------------------------------------------------------------
// StitchMemo units.

TEST(StitchMemoTest, EdgeChoiceAndConnectorRoundTripPerPeriod) {
  StitchMemo memo;
  const std::vector<VertexId> choice{3, 4, 5};
  const std::vector<VertexId> connector{1, 2, 3};
  std::vector<VertexId> got;
  EXPECT_FALSE(memo.FindEdgeChoice(0, 11, 1, 9, &got));
  memo.RememberEdgeChoice(0, 11, 1, 9, choice);
  ASSERT_TRUE(memo.FindEdgeChoice(0, 11, 1, 9, &got));
  EXPECT_EQ(got, choice);
  // The other period's table is independent.
  EXPECT_FALSE(memo.FindEdgeChoice(1, 11, 1, 9, &got));
  // A different destination is a different key (the choice depends on the
  // query's goal point).
  EXPECT_FALSE(memo.FindEdgeChoice(0, 11, 1, 8, &got));

  EXPECT_FALSE(memo.FindConnector(0, 1, 3, &got));
  memo.RememberConnector(0, 1, 3, connector);
  ASSERT_TRUE(memo.FindConnector(0, 1, 3, &got));
  EXPECT_EQ(got, connector);
  EXPECT_FALSE(memo.FindConnector(1, 1, 3, &got));

  const StitchMemo::Stats stats = memo.GetStats();
  EXPECT_EQ(stats.edge_hits, 1u);
  EXPECT_EQ(stats.connector_hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(StitchMemoTest, FullMemoRejectsInsteadOfEvicting) {
  StitchMemoOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 160;  // room for ~1 small path
  StitchMemo memo(options);
  memo.RememberConnector(0, 1, 2, {1, 2});
  memo.RememberConnector(0, 3, 4, {3, 4});  // over budget: dropped
  std::vector<VertexId> got;
  EXPECT_TRUE(memo.FindConnector(0, 1, 2, &got));
  EXPECT_FALSE(memo.FindConnector(0, 3, 4, &got));
  const StitchMemo::Stats stats = memo.GetStats();
  EXPECT_GE(stats.rejected_full, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

// ---------------------------------------------------------------------------
// DeadlineBudget units.

TEST(DeadlineBudgetTest, DisabledBudgetMeansNoCap) {
  const DeadlineBudget budget{DeadlineBudgetOptions{}};
  EXPECT_FALSE(budget.enabled());
  EXPECT_EQ(budget.MaxPreferenceSettles(), 0u);
  EXPECT_EQ(budget.ToQueryBudget().max_preference_settles, 0u);
}

TEST(DeadlineBudgetTest, CapDerivesFromMicrosecondsAndFloor) {
  DeadlineBudgetOptions options;
  options.fallback_budget_us = 100;
  options.settles_per_us = 50;
  options.min_settles = 256;
  EXPECT_EQ(DeadlineBudget(options).MaxPreferenceSettles(), 5000u);
  options.fallback_budget_us = 1;  // 50 settles, below the floor
  EXPECT_EQ(DeadlineBudget(options).MaxPreferenceSettles(), 256u);
}

// ---------------------------------------------------------------------------
// End-to-end serving-layer behavior on a small built pipeline.

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = CityDataset(0.08);
    spec.network.city_width_m = 8000;
    spec.network.city_height_m = 6000;
    auto built = BuildDataset(spec);
    L2R_CHECK(built.ok());
    dataset_ = new BuiltDataset(std::move(built).value());
    L2ROptions options;
    auto router = L2RRouter::Build(&dataset_->world.net,
                                   dataset_->split.train, options);
    L2R_CHECK(router.ok());
    router_ = router->release();
  }

  static void TearDownTestSuite() {
    delete router_;
    router_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::vector<BatchQuery> MakeQueries(size_t cap) {
    std::vector<BatchQuery> queries;
    for (const MatchedTrajectory& t : dataset_->split.test) {
      if (queries.size() >= cap) break;
      if (t.path.size() < 3 || t.path.front() == t.path.back()) continue;
      queries.push_back(
          BatchQuery{t.path.front(), t.path.back(), t.departure_time});
    }
    queries.push_back(BatchQuery{0, 0, 0});  // invalid: s == d
    return queries;
  }

  /// Cold-path ground truth through the plain Route API.
  static std::vector<Result<RouteResult>> PlainResults(
      const std::vector<BatchQuery>& queries) {
    std::vector<Result<RouteResult>> out;
    L2RQueryContext ctx = router_->MakeContext();
    for (const BatchQuery& q : queries) {
      out.push_back(router_->Route(&ctx, q.s, q.d, q.departure_time));
    }
    return out;
  }

  static void ExpectSameResult(const Result<RouteResult>& want,
                               const Result<RouteResult>& got, size_t i) {
    ASSERT_EQ(want.ok(), got.ok()) << "slot " << i;
    if (!want.ok()) {
      EXPECT_EQ(want.status().code(), got.status().code()) << "slot " << i;
      return;
    }
    EXPECT_EQ(want->path.vertices, got->path.vertices) << "slot " << i;
    EXPECT_EQ(want->path.cost, got->path.cost) << "slot " << i;
    EXPECT_EQ(want->method, got->method) << "slot " << i;
    EXPECT_TRUE(*want == *got) << "slot " << i;
  }

  static BuiltDataset* dataset_;
  static L2RRouter* router_;
};

BuiltDataset* ServeTest::dataset_ = nullptr;
L2RRouter* ServeTest::router_ = nullptr;

TEST_F(ServeTest, CacheHitsAreByteIdenticalToColdRoutes) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  ASSERT_GT(queries.size(), 10u);
  const auto want = PlainResults(queries);

  ServingRouter serving(router_);
  L2RQueryContext ctx = router_->MakeContext();
  // Pass 1 populates the cache (all misses); pass 2 is all hits. Both
  // must equal the cold-path truth exactly.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto got = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
      ExpectSameResult(want[i], got, i);
    }
  }
  const ServingRouter::Stats stats = serving.GetStats();
  size_t ok_queries = 0;
  for (const auto& r : want) ok_queries += r.ok() ? 1 : 0;
  // Every ok query hits on the second pass; errors are never cached.
  EXPECT_EQ(stats.cache.hits, ok_queries);
  EXPECT_EQ(stats.queries, 2 * queries.size());
}

TEST_F(ServeTest, BatchServingMatchesPlainBatchFor1And4Threads) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  const auto want = PlainResults(queries);

  for (const unsigned threads : {1u, 4u}) {
    ServingRouter serving(router_);
    BatchRouter batch(&serving, threads);
    // Cold batch (misses) and warm batch (hits) both match the plain
    // sequential truth byte for byte.
    for (int pass = 0; pass < 2; ++pass) {
      const auto got = batch.RouteAll(queries);
      ASSERT_EQ(got.size(), queries.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectSameResult(want[i], got[i], i);
      }
    }
    EXPECT_GT(serving.GetStats().cache.hits, 0u);
  }
}

TEST_F(ServeTest, StitchMemoAloneDoesNotChangeResults) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  const auto want = PlainResults(queries);

  ServingRouterOptions options;
  options.enable_route_cache = false;  // isolate the memo
  ServingRouter serving(router_, options);
  ASSERT_TRUE(serving.memo_enabled());
  ASSERT_FALSE(serving.cache_enabled());
  L2RQueryContext ctx = router_->MakeContext();
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto got = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
      ExpectSameResult(want[i], got, i);
    }
  }
  // The second pass re-stitches the same region paths, so the memo must
  // have been consulted successfully.
  const StitchMemo::Stats stats = serving.GetStats().memo;
  EXPECT_GT(stats.edge_hits + stats.connector_hits, 0u);
}

TEST_F(ServeTest, BudgetDegradeIsDeterministicAndFlagged) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  const auto want = PlainResults(queries);
  size_t plain_pref_routes = 0;
  for (const auto& r : want) {
    if (r.ok() && r->method == RouteMethod::kPreferenceRoute) {
      ++plain_pref_routes;
    }
  }

  ServingRouterOptions options;
  options.enable_route_cache = false;
  options.enable_stitch_memo = false;
  // A 1-settle cap: any attempted Algorithm-2 rebuild exhausts the budget
  // immediately and must degrade.
  options.deadline.fallback_budget_us = 0.01;
  options.deadline.settles_per_us = 1;
  options.deadline.min_settles = 1;
  ServingRouter serving(router_, options);
  ASSERT_EQ(serving.deadline_budget().MaxPreferenceSettles(), 1u);

  L2RQueryContext ctx = router_->MakeContext();
  std::vector<Result<RouteResult>> first;
  for (const BatchQuery& q : queries) {
    first.push_back(serving.Route(&ctx, q.s, q.d, q.departure_time));
  }
  size_t degraded = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(first[i].ok(), want[i].ok()) << "slot " << i;
    if (!first[i].ok()) continue;
    if (first[i]->budget_degraded) {
      ++degraded;
      // Degrades land on the stitched path or the fastest fallback, never
      // on a (budget-blown) preference route.
      EXPECT_NE(first[i]->method, RouteMethod::kPreferenceRoute)
          << "slot " << i;
    } else {
      ExpectSameResult(want[i], first[i], i);
    }
  }
  // Every query the cold path answered via Algorithm 2 must have degraded
  // under the 1-settle cap (queries whose rebuild failed outright on the
  // cold path can add more: their capped search exhausts before proving
  // NotFound).
  EXPECT_GE(degraded, plain_pref_routes);
  EXPECT_EQ(serving.GetStats().budget_degraded, degraded);

  // Degrade decisions are result state, not timing: a re-run reproduces
  // every slot exactly.
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto again = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
    ExpectSameResult(first[i], again, i);
  }
}

TEST_F(ServeTest, AllDuplicateBatchesCoalesceByteIdentically) {
  // A batch that is one query repeated: the degenerate commute burst.
  const std::vector<BatchQuery> base = MakeQueries(8);
  ASSERT_GT(base.size(), 1u);
  constexpr size_t kCopies = 24;
  const std::vector<BatchQuery> batch(kCopies, base.front());
  const auto want = PlainResults(batch);

  for (const unsigned threads : {1u, 4u}) {
    ServingRouter serving(router_);  // cache + memo + single-flight on
    BatchRouter dedup(&serving, BatchRouterOptions{threads, true});
    const auto got = dedup.RouteAll(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectSameResult(want[i], got[i], i);
    }
    // One representative routed; every other slot was a copy.
    EXPECT_EQ(dedup.DuplicatesCollapsed(), kCopies - 1);
    EXPECT_EQ(serving.GetStats().queries, 1u);
  }
}

TEST_F(ServeTest, InterleavedDuplicateBatchesCoalesceByteIdentically) {
  // Duplicates spread across the batch (q0 q1 ... qN q0 q1 ...), the
  // shape the scenario suite's duplicate_heavy workload stresses.
  const std::vector<BatchQuery> base = MakeQueries(12);
  ASSERT_GT(base.size(), 4u);
  std::vector<BatchQuery> batch;
  for (int rep = 0; rep < 4; ++rep) {
    batch.insert(batch.end(), base.begin(), base.end());
  }
  const auto want = PlainResults(batch);

  for (const unsigned threads : {1u, 4u}) {
    // Dedup through the full serving stack: batch-level coalescing in
    // front, single-flight + cache behind.
    ServingRouter serving(router_);
    BatchRouter dedup(&serving, BatchRouterOptions{threads, true});
    const auto got = dedup.RouteAll(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectSameResult(want[i], got[i], i);
    }
    EXPECT_EQ(dedup.DuplicatesCollapsed(), batch.size() - base.size());
  }
}

TEST_F(ServeTest, SingleFlightAloneKeepsBatchResultsByteIdentical) {
  // Batch dedup off and cache off: every duplicate slot reaches the
  // single-flight layer itself, concurrently at t=4. Results must still
  // be byte-identical to the cold path, whatever coalescing happened.
  const std::vector<BatchQuery> base = MakeQueries(12);
  std::vector<BatchQuery> batch;
  for (int rep = 0; rep < 4; ++rep) {
    batch.insert(batch.end(), base.begin(), base.end());
  }
  const auto want = PlainResults(batch);

  for (const unsigned threads : {1u, 4u}) {
    ServingRouterOptions options;
    options.enable_route_cache = false;
    options.enable_stitch_memo = false;
    ServingRouter serving(router_, options);
    ASSERT_TRUE(serving.single_flight_enabled());
    BatchRouter batch_router(&serving, BatchRouterOptions{threads, false});
    const auto got = batch_router.RouteAll(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectSameResult(want[i], got[i], i);
    }
    // Every call either led or coalesced; nothing is lost or duplicated.
    const SingleFlight::Stats stats = serving.GetStats().single_flight;
    EXPECT_EQ(stats.leaders + stats.coalesced, batch.size());
  }
}

TEST_F(ServeTest, AdmissionGateHoldsUnderEvictionPressure) {
  // ROADMAP gap: the default 8 MiB cache never evicts at this scale, so
  // the admission policy had only ever been exercised on an idle cache.
  // Shrink the capacity until a single fill pass actually evicts, then
  // verify the kAfterNMisses gate under that pressure: a hot degraded
  // key re-seen admit_after_misses times enters the cache and serves
  // hits, while degraded keys seen once stay out entirely.
  std::vector<BatchQuery> queries = MakeQueries(40);
  queries.pop_back();  // drop the invalid (s == d) tail query
  // Dedup by (s, d, period) so "seen once" below is exact per key.
  {
    std::unordered_map<QueryKey, bool, QueryKeyHash> seen;
    std::vector<BatchQuery> unique;
    for (const BatchQuery& q : queries) {
      const QueryKey key{
          q.s, q.d,
          static_cast<uint8_t>(router_->EffectivePeriod(q.departure_time))};
      if (seen.emplace(key, true).second) unique.push_back(q);
    }
    queries = std::move(unique);
  }
  ASSERT_GT(queries.size(), 8u);

  auto make_options = [](size_t capacity_bytes) {
    ServingRouterOptions options;
    options.enable_stitch_memo = false;
    options.enable_single_flight = false;
    // 1-settle cap: every attempted Algorithm-2 rebuild degrades.
    options.deadline.fallback_budget_us = 0.01;
    options.deadline.settles_per_us = 1;
    options.deadline.min_settles = 1;
    options.route_cache.num_shards = 1;  // deterministic LRU order
    options.route_cache.capacity_bytes = capacity_bytes;
    options.route_cache.admission.degraded = DegradedAdmission::kAfterNMisses;
    options.route_cache.admission.admit_after_misses = 2;
    return options;
  };

  // Shrink until the fill pass evicts. Everything below is sequential
  // and single-threaded, so a capacity that evicts in the probe evicts
  // identically in the fresh router used for the assertions.
  size_t capacity = 1u << 15;
  uint64_t probe_evictions = 0;
  for (; capacity >= 512; capacity /= 2) {
    ServingRouter probe(router_, make_options(capacity));
    L2RQueryContext ctx = router_->MakeContext();
    for (const BatchQuery& q : queries) {
      (void)probe.Route(&ctx, q.s, q.d, q.departure_time);
    }
    probe_evictions = probe.GetStats().cache.evictions;
    if (probe_evictions > 0) break;
  }
  ASSERT_GT(probe_evictions, 0u) << "no capacity in the ladder evicted";

  ServingRouter serving(router_, make_options(capacity));
  L2RQueryContext ctx = router_->MakeContext();
  std::vector<Result<RouteResult>> first;
  for (const BatchQuery& q : queries) {
    first.push_back(serving.Route(&ctx, q.s, q.d, q.departure_time));
  }
  size_t degraded_keys = 0;
  size_t hot = queries.size();
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i].ok() && first[i]->budget_degraded) {
      ++degraded_keys;
      if (hot == queries.size()) hot = i;  // first degraded key is "hot"
    }
  }
  ASSERT_GE(degraded_keys, 2u);  // a hot key plus at least one cold one
  const RouteCache::Stats after_fill = serving.GetStats().cache;
  // Every degraded insert was its key's first observation: all rejected.
  EXPECT_EQ(after_fill.admission.degraded_admitted, 0u);
  EXPECT_EQ(after_fill.admission.degraded_rejected, degraded_keys);
  EXPECT_GT(after_fill.evictions, 0u);
  EXPECT_LE(after_fill.bytes, capacity);
  EXPECT_EQ(after_fill.hits, 0u);  // distinct keys: the fill never hits

  // Second observation of the hot key: recomputed (miss), now admitted.
  const BatchQuery& hq = queries[hot];
  const auto recompute = serving.Route(&ctx, hq.s, hq.d, hq.departure_time);
  ExpectSameResult(first[hot], recompute, hot);
  const RouteCache::Stats after_admit = serving.GetStats().cache;
  EXPECT_EQ(after_admit.admission.degraded_admitted, 1u);
  EXPECT_EQ(after_admit.hits, 0u);

  // Third observation: served from cache, byte-identical, still tagged
  // degraded. Nothing was inserted in between, so it cannot have been
  // evicted.
  const auto hit = serving.Route(&ctx, hq.s, hq.d, hq.departure_time);
  ExpectSameResult(first[hot], hit, hot);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->budget_degraded);
  const RouteCache::Stats after_hit = serving.GetStats().cache;
  EXPECT_EQ(after_hit.hits, 1u);
  // Cold degraded keys were never admitted: the only admitted degraded
  // entry is the hot one.
  EXPECT_EQ(after_hit.admission.degraded_admitted, 1u);
  EXPECT_GE(after_hit.admission.degraded_rejected, degraded_keys);
}

TEST_F(ServeTest, DegradedRoutesAreCachedConsistently) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  ServingRouterOptions options;
  options.deadline.fallback_budget_us = 0.01;
  options.deadline.settles_per_us = 1;
  options.deadline.min_settles = 1;
  ServingRouter serving(router_, options);
  L2RQueryContext ctx = router_->MakeContext();
  std::vector<Result<RouteResult>> first;
  for (const BatchQuery& q : queries) {
    first.push_back(serving.Route(&ctx, q.s, q.d, q.departure_time));
  }
  // Warm pass: hits return the same (possibly degraded) results the miss
  // pass computed and cached.
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto again = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
    ExpectSameResult(first[i], again, i);
  }
}

// A Clock whose time advances a fixed step per NowMicros() call — the
// deterministic stopwatch CalibrateBudget's warm-up batch is timed on.
class SteppingClock final : public Clock {
 public:
  explicit SteppingClock(int64_t step_us) : step_us_(step_us) {}
  int64_t NowMicros() const override { return now_us_ += step_us_; }
  std::cv_status WaitUntil(CondVar& cv, Mutex& mu,
                           int64_t deadline_us) override L2R_REQUIRES(mu) {
    (void)cv;
    (void)mu;
    (void)deadline_us;
    return std::cv_status::timeout;
  }

 private:
  const int64_t step_us_;
  mutable int64_t now_us_ = 0;
};

TEST_F(ServeTest, CalibrateBudgetPinsTheCapFromAVirtualClockSample) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (const BatchQuery& q : MakeQueries(9)) {
    if (q.s != q.d) pairs.emplace_back(q.s, q.d);
  }
  ASSERT_GE(pairs.size(), 4u);
  const double departure = 12 * 3600.0;  // off-peak

  ServingRouterOptions options;
  options.deadline.fallback_budget_us = 500;
  options.deadline.settles_per_us = 80;  // the guess calibration replaces
  ServingRouter serving(router_, options);
  const size_t guessed_cap = serving.CurrentSettleCap();
  ASSERT_GT(guessed_cap, 0u);

  // Replicate the warm-up measurement: the same plain searches settle the
  // same vertex count (search determinism), and the stepping clock makes
  // the elapsed time exactly one step (one NowMicros() call on each side
  // of the warm-up loop) — so the calibrated cap is pinned exactly.
  const TimePeriod period = router_->EffectivePeriod(departure);
  DijkstraSearch probe(router_->net());
  for (const auto& [s, d] : pairs) {
    (void)probe.ShortestPath(s, d, router_->weights(period).time);
  }
  constexpr int64_t kStepUs = 100;
  DeadlineBudget expected_budget(options.deadline);
  expected_budget.Calibrate(probe.LifetimeSettles(), kStepUs);
  const size_t expected_cap = expected_budget.MaxPreferenceSettles();

  SteppingClock clock(kStepUs);
  EXPECT_EQ(serving.CalibrateBudget(pairs, departure, &clock), expected_cap);
  EXPECT_EQ(serving.CurrentSettleCap(), expected_cap);
  EXPECT_NE(serving.CurrentSettleCap(), guessed_cap)
      << "calibration sample happened to reproduce the configured guess; "
         "pick a different kStepUs";

  // Disabled budget: calibration is a no-op reporting cap 0 (uncapped).
  ServingRouter unbudgeted(router_, ServingRouterOptions{});
  SteppingClock clock2(kStepUs);
  EXPECT_EQ(unbudgeted.CalibrateBudget(pairs, departure, &clock2), 0u);
  EXPECT_EQ(unbudgeted.CurrentSettleCap(), 0u);
}

}  // namespace
}  // namespace l2r
