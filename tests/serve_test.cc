#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch_router.h"
#include "core/l2r.h"
#include "eval/datasets.h"
#include "serve/deadline_budget.h"
#include "serve/route_cache.h"
#include "serve/serving_router.h"
#include "serve/stitch_memo.h"
#include "test_util.h"

namespace l2r {
namespace {

// ---------------------------------------------------------------------------
// RouteCache units (no dataset needed).

RouteResult MakeResult(VertexId a, size_t hops) {
  RouteResult r;
  r.path.vertices.resize(hops + 1);
  for (size_t i = 0; i <= hops; ++i) {
    r.path.vertices[i] = a + static_cast<VertexId>(i);
  }
  r.path.cost = static_cast<double>(hops);
  r.method = RouteMethod::kRegionGraph;
  r.region_hops = hops;
  return r;
}

TEST(RouteCacheTest, HitReturnsExactInsertedValue) {
  RouteCache cache;
  const RouteCacheKey key{7, 9, 1};
  const RouteResult want = MakeResult(7, 5);
  RouteResult got;
  EXPECT_FALSE(cache.Lookup(key, &got));
  cache.Insert(key, want);
  ASSERT_TRUE(cache.Lookup(key, &got));
  EXPECT_TRUE(got == want);
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(RouteCacheTest, PeriodIsPartOfTheKey) {
  RouteCache cache;
  const RouteResult offpeak = MakeResult(1, 3);
  const RouteResult peak = MakeResult(100, 4);
  cache.Insert(RouteCacheKey{1, 2, 0}, offpeak);
  cache.Insert(RouteCacheKey{1, 2, 1}, peak);
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(RouteCacheKey{1, 2, 0}, &got));
  EXPECT_TRUE(got == offpeak);
  ASSERT_TRUE(cache.Lookup(RouteCacheKey{1, 2, 1}, &got));
  EXPECT_TRUE(got == peak);
}

TEST(RouteCacheTest, LruEvictionRespectsByteCapacityAndRecency) {
  const RouteResult r = MakeResult(0, 8);
  const size_t entry = RouteCache::EntryBytes(r);
  RouteCacheOptions options;
  options.num_shards = 1;  // deterministic LRU order
  options.capacity_bytes = 3 * entry;
  RouteCache cache(options);
  auto key = [](VertexId s) { return RouteCacheKey{s, s + 1, 0}; };
  cache.Insert(key(1), MakeResult(1, 8));
  cache.Insert(key(2), MakeResult(2, 8));
  cache.Insert(key(3), MakeResult(3, 8));
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(key(1), &got));  // touch 1: now 2 is LRU
  cache.Insert(key(4), MakeResult(4, 8));   // evicts 2
  EXPECT_TRUE(cache.Lookup(key(1), &got));
  EXPECT_FALSE(cache.Lookup(key(2), &got));
  EXPECT_TRUE(cache.Lookup(key(3), &got));
  EXPECT_TRUE(cache.Lookup(key(4), &got));
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
}

TEST(RouteCacheTest, ByteAccountingStaysExactUnderEvictionChurn) {
  // The byte budget is charged from the stored copy, so source vectors
  // carrying excess capacity must not leak phantom bytes into the shard
  // accounting as entries churn through eviction.
  RouteCacheOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 3 * RouteCache::EntryBytes(MakeResult(0, 8));
  RouteCache cache(options);
  for (VertexId s = 0; s < 200; ++s) {
    RouteResult r = MakeResult(s, 8);
    r.path.vertices.reserve(64);  // excess caller-side capacity
    cache.Insert(RouteCacheKey{s, s + 1, 0}, r);
  }
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 3u);  // full occupancy survives the churn
  EXPECT_LE(stats.bytes, options.capacity_bytes);
  EXPECT_EQ(stats.evictions, 200u - 3u);
  // The most recent entries are still resident and intact.
  RouteResult got;
  ASSERT_TRUE(cache.Lookup(RouteCacheKey{199, 200, 0}, &got));
  EXPECT_TRUE(got == MakeResult(199, 8));
}

TEST(RouteCacheTest, OversizeEntryIsNotCached) {
  RouteCacheOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 64;  // smaller than any entry
  RouteCache cache(options);
  cache.Insert(RouteCacheKey{1, 2, 0}, MakeResult(1, 50));
  RouteResult got;
  EXPECT_FALSE(cache.Lookup(RouteCacheKey{1, 2, 0}, &got));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(RouteCacheTest, ConcurrentMixedLoadStaysConsistent) {
  RouteCacheOptions options;
  options.num_shards = 4;
  options.capacity_bytes = 1u << 16;  // small: forces eviction under load
  RouteCache cache(options);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> value_mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &value_mismatches, t] {
      RouteResult got;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const VertexId s = static_cast<VertexId>((t * 7 + i) % 97);
        const RouteCacheKey key{s, s + 1, static_cast<uint8_t>(i % 2)};
        if (cache.Lookup(key, &got)) {
          // Values are keyed deterministically, so a hit must match what
          // any thread inserted for this key.
          if (got.path.vertices.front() != s) ++value_mismatches;
        } else {
          cache.Insert(key, MakeResult(s, 4));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(value_mismatches.load(), 0u);
  const RouteCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
}

// ---------------------------------------------------------------------------
// StitchMemo units.

TEST(StitchMemoTest, EdgeChoiceAndConnectorRoundTripPerPeriod) {
  StitchMemo memo;
  const std::vector<VertexId> choice{3, 4, 5};
  const std::vector<VertexId> connector{1, 2, 3};
  std::vector<VertexId> got;
  EXPECT_FALSE(memo.FindEdgeChoice(0, 11, 1, 9, &got));
  memo.RememberEdgeChoice(0, 11, 1, 9, choice);
  ASSERT_TRUE(memo.FindEdgeChoice(0, 11, 1, 9, &got));
  EXPECT_EQ(got, choice);
  // The other period's table is independent.
  EXPECT_FALSE(memo.FindEdgeChoice(1, 11, 1, 9, &got));
  // A different destination is a different key (the choice depends on the
  // query's goal point).
  EXPECT_FALSE(memo.FindEdgeChoice(0, 11, 1, 8, &got));

  EXPECT_FALSE(memo.FindConnector(0, 1, 3, &got));
  memo.RememberConnector(0, 1, 3, connector);
  ASSERT_TRUE(memo.FindConnector(0, 1, 3, &got));
  EXPECT_EQ(got, connector);
  EXPECT_FALSE(memo.FindConnector(1, 1, 3, &got));

  const StitchMemo::Stats stats = memo.GetStats();
  EXPECT_EQ(stats.edge_hits, 1u);
  EXPECT_EQ(stats.connector_hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(StitchMemoTest, FullMemoRejectsInsteadOfEvicting) {
  StitchMemoOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 160;  // room for ~1 small path
  StitchMemo memo(options);
  memo.RememberConnector(0, 1, 2, {1, 2});
  memo.RememberConnector(0, 3, 4, {3, 4});  // over budget: dropped
  std::vector<VertexId> got;
  EXPECT_TRUE(memo.FindConnector(0, 1, 2, &got));
  EXPECT_FALSE(memo.FindConnector(0, 3, 4, &got));
  const StitchMemo::Stats stats = memo.GetStats();
  EXPECT_GE(stats.rejected_full, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

// ---------------------------------------------------------------------------
// DeadlineBudget units.

TEST(DeadlineBudgetTest, DisabledBudgetMeansNoCap) {
  const DeadlineBudget budget{DeadlineBudgetOptions{}};
  EXPECT_FALSE(budget.enabled());
  EXPECT_EQ(budget.MaxPreferenceSettles(), 0u);
  EXPECT_EQ(budget.ToQueryBudget().max_preference_settles, 0u);
}

TEST(DeadlineBudgetTest, CapDerivesFromMicrosecondsAndFloor) {
  DeadlineBudgetOptions options;
  options.fallback_budget_us = 100;
  options.settles_per_us = 50;
  options.min_settles = 256;
  EXPECT_EQ(DeadlineBudget(options).MaxPreferenceSettles(), 5000u);
  options.fallback_budget_us = 1;  // 50 settles, below the floor
  EXPECT_EQ(DeadlineBudget(options).MaxPreferenceSettles(), 256u);
}

// ---------------------------------------------------------------------------
// End-to-end serving-layer behavior on a small built pipeline.

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = CityDataset(0.08);
    spec.network.city_width_m = 8000;
    spec.network.city_height_m = 6000;
    auto built = BuildDataset(spec);
    L2R_CHECK(built.ok());
    dataset_ = new BuiltDataset(std::move(built).value());
    L2ROptions options;
    auto router = L2RRouter::Build(&dataset_->world.net,
                                   dataset_->split.train, options);
    L2R_CHECK(router.ok());
    router_ = router->release();
  }

  static void TearDownTestSuite() {
    delete router_;
    router_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::vector<BatchQuery> MakeQueries(size_t cap) {
    std::vector<BatchQuery> queries;
    for (const MatchedTrajectory& t : dataset_->split.test) {
      if (queries.size() >= cap) break;
      if (t.path.size() < 3 || t.path.front() == t.path.back()) continue;
      queries.push_back(
          BatchQuery{t.path.front(), t.path.back(), t.departure_time});
    }
    queries.push_back(BatchQuery{0, 0, 0});  // invalid: s == d
    return queries;
  }

  /// Cold-path ground truth through the plain Route API.
  static std::vector<Result<RouteResult>> PlainResults(
      const std::vector<BatchQuery>& queries) {
    std::vector<Result<RouteResult>> out;
    L2RQueryContext ctx = router_->MakeContext();
    for (const BatchQuery& q : queries) {
      out.push_back(router_->Route(&ctx, q.s, q.d, q.departure_time));
    }
    return out;
  }

  static void ExpectSameResult(const Result<RouteResult>& want,
                               const Result<RouteResult>& got, size_t i) {
    ASSERT_EQ(want.ok(), got.ok()) << "slot " << i;
    if (!want.ok()) {
      EXPECT_EQ(want.status().code(), got.status().code()) << "slot " << i;
      return;
    }
    EXPECT_EQ(want->path.vertices, got->path.vertices) << "slot " << i;
    EXPECT_EQ(want->path.cost, got->path.cost) << "slot " << i;
    EXPECT_EQ(want->method, got->method) << "slot " << i;
    EXPECT_TRUE(*want == *got) << "slot " << i;
  }

  static BuiltDataset* dataset_;
  static L2RRouter* router_;
};

BuiltDataset* ServeTest::dataset_ = nullptr;
L2RRouter* ServeTest::router_ = nullptr;

TEST_F(ServeTest, CacheHitsAreByteIdenticalToColdRoutes) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  ASSERT_GT(queries.size(), 10u);
  const auto want = PlainResults(queries);

  ServingRouter serving(router_);
  L2RQueryContext ctx = router_->MakeContext();
  // Pass 1 populates the cache (all misses); pass 2 is all hits. Both
  // must equal the cold-path truth exactly.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto got = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
      ExpectSameResult(want[i], got, i);
    }
  }
  const ServingRouter::Stats stats = serving.GetStats();
  size_t ok_queries = 0;
  for (const auto& r : want) ok_queries += r.ok() ? 1 : 0;
  // Every ok query hits on the second pass; errors are never cached.
  EXPECT_EQ(stats.cache.hits, ok_queries);
  EXPECT_EQ(stats.queries, 2 * queries.size());
}

TEST_F(ServeTest, BatchServingMatchesPlainBatchFor1And4Threads) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  const auto want = PlainResults(queries);

  for (const unsigned threads : {1u, 4u}) {
    ServingRouter serving(router_);
    BatchRouter batch(&serving, threads);
    // Cold batch (misses) and warm batch (hits) both match the plain
    // sequential truth byte for byte.
    for (int pass = 0; pass < 2; ++pass) {
      const auto got = batch.RouteAll(queries);
      ASSERT_EQ(got.size(), queries.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectSameResult(want[i], got[i], i);
      }
    }
    EXPECT_GT(serving.GetStats().cache.hits, 0u);
  }
}

TEST_F(ServeTest, StitchMemoAloneDoesNotChangeResults) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  const auto want = PlainResults(queries);

  ServingRouterOptions options;
  options.enable_route_cache = false;  // isolate the memo
  ServingRouter serving(router_, options);
  ASSERT_TRUE(serving.memo_enabled());
  ASSERT_FALSE(serving.cache_enabled());
  L2RQueryContext ctx = router_->MakeContext();
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto got = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
      ExpectSameResult(want[i], got, i);
    }
  }
  // The second pass re-stitches the same region paths, so the memo must
  // have been consulted successfully.
  const StitchMemo::Stats stats = serving.GetStats().memo;
  EXPECT_GT(stats.edge_hits + stats.connector_hits, 0u);
}

TEST_F(ServeTest, BudgetDegradeIsDeterministicAndFlagged) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  const auto want = PlainResults(queries);
  size_t plain_pref_routes = 0;
  for (const auto& r : want) {
    if (r.ok() && r->method == RouteMethod::kPreferenceRoute) {
      ++plain_pref_routes;
    }
  }

  ServingRouterOptions options;
  options.enable_route_cache = false;
  options.enable_stitch_memo = false;
  // A 1-settle cap: any attempted Algorithm-2 rebuild exhausts the budget
  // immediately and must degrade.
  options.deadline.fallback_budget_us = 0.01;
  options.deadline.settles_per_us = 1;
  options.deadline.min_settles = 1;
  ServingRouter serving(router_, options);
  ASSERT_EQ(serving.deadline_budget().MaxPreferenceSettles(), 1u);

  L2RQueryContext ctx = router_->MakeContext();
  std::vector<Result<RouteResult>> first;
  for (const BatchQuery& q : queries) {
    first.push_back(serving.Route(&ctx, q.s, q.d, q.departure_time));
  }
  size_t degraded = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(first[i].ok(), want[i].ok()) << "slot " << i;
    if (!first[i].ok()) continue;
    if (first[i]->budget_degraded) {
      ++degraded;
      // Degrades land on the stitched path or the fastest fallback, never
      // on a (budget-blown) preference route.
      EXPECT_NE(first[i]->method, RouteMethod::kPreferenceRoute)
          << "slot " << i;
    } else {
      ExpectSameResult(want[i], first[i], i);
    }
  }
  // Every query the cold path answered via Algorithm 2 must have degraded
  // under the 1-settle cap (queries whose rebuild failed outright on the
  // cold path can add more: their capped search exhausts before proving
  // NotFound).
  EXPECT_GE(degraded, plain_pref_routes);
  EXPECT_EQ(serving.GetStats().budget_degraded, degraded);

  // Degrade decisions are result state, not timing: a re-run reproduces
  // every slot exactly.
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto again = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
    ExpectSameResult(first[i], again, i);
  }
}

TEST_F(ServeTest, DegradedRoutesAreCachedConsistently) {
  const std::vector<BatchQuery> queries = MakeQueries(40);
  ServingRouterOptions options;
  options.deadline.fallback_budget_us = 0.01;
  options.deadline.settles_per_us = 1;
  options.deadline.min_settles = 1;
  ServingRouter serving(router_, options);
  L2RQueryContext ctx = router_->MakeContext();
  std::vector<Result<RouteResult>> first;
  for (const BatchQuery& q : queries) {
    first.push_back(serving.Route(&ctx, q.s, q.d, q.departure_time));
  }
  // Warm pass: hits return the same (possibly degraded) results the miss
  // pass computed and cached.
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto again = serving.Route(&ctx, queries[i].s, queries[i].d,
                                     queries[i].departure_time);
    ExpectSameResult(first[i], again, i);
  }
}

}  // namespace
}  // namespace l2r
