// Build-integrity smoke test (the `l2r_smoke` ctest entry): links against
// every module library explicitly and touches a symbol from each while
// running one end-to-end L2R build + route. If a module's link
// dependencies regress, this binary fails to link even when no unit
// suite exercises the broken pairing.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/simple_routers.h"
#include "common/stats.h"
#include "core/l2r.h"
#include "eval/datasets.h"
#include "linalg/sparse_matrix.h"
#include "mapmatch/hmm_matcher.h"
#include "pref/similarity.h"
#include "roadnet/spatial_grid.h"
#include "serve/serving_router.h"
#include "traj/trajectory.h"

namespace l2r {
namespace {

TEST(L2RSmokeTest, EndToEndBuildAndRoute) {
  // eval (+ roadnet/traj generators): a tiny world and workload.
  DatasetSpec spec = CityDataset(/*traj_scale=*/0.04);
  spec.network.city_width_m = 7000;
  spec.network.city_height_m = 6000;
  spec.traj.emit_gps = true;  // presets skip GPS emission; mapmatch needs it
  auto built = BuildDataset(spec);
  ASSERT_TRUE(built.ok()) << built.status();
  ASSERT_FALSE(built->split.test.empty());
  const RoadNetwork& net = built->world.net;

  // core (and region/pref/transfer underneath): full pipeline build plus
  // one routed query.
  L2ROptions options;
  auto router = L2RRouter::Build(&net, built->split.train, options);
  ASSERT_TRUE(router.ok()) << router.status();
  L2RQueryContext ctx = (*router)->MakeContext();
  const MatchedTrajectory& probe = built->split.test.front();
  auto routed = (*router)->Route(&ctx, probe.path.front(), probe.path.back(),
                                 probe.departure_time);
  ASSERT_TRUE(routed.ok()) << routed.status();
  ASSERT_GE(routed->path.vertices.size(), 2u);

  // serve: the same query through the caching layer — miss then hit, both
  // byte-identical to the cold route.
  ServingRouter serving(router->get());
  for (int pass = 0; pass < 2; ++pass) {
    auto served = serving.Route(&ctx, probe.path.front(), probe.path.back(),
                                probe.departure_time);
    ASSERT_TRUE(served.ok()) << served.status();
    EXPECT_TRUE(*served == *routed);
  }
  EXPECT_EQ(serving.GetStats().cache.hits, 1u);

  // baselines (+ routing): the fastest baseline answers the same query.
  FastestRouter fastest(net);
  auto base = fastest.Route(probe.path.front(), probe.path.back(),
                            probe.departure_time, probe.driver_id);
  ASSERT_TRUE(base.ok()) << base.status();

  // pref + common: both answers compared against the observed path.
  RunningStats sim;
  sim.Add(PathSimilarity(net, probe.path, routed->path.vertices));
  sim.Add(PathSimilarity(net, probe.path, base->vertices));
  EXPECT_GE(sim.mean(), 0.0);
  EXPECT_LE(sim.mean(), 1.0);

  // mapmatch + roadnet: snap one raw GPS trace back onto the network.
  SpatialGrid grid(net, /*cell_size_m=*/250);
  HmmMapMatcher matcher(net, grid);
  ASSERT_FALSE(built->data.gps.empty());
  auto match = matcher.Match(built->data.gps.front());
  EXPECT_TRUE(match.ok()) << match.status();

  // linalg: assemble and apply a small sparse system.
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, {{0, 0, 2.0}, {1, 1, 3.0}, {0, 1, 1.0}});
  std::vector<double> y;
  m.Multiply({1.0, 1.0}, &y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

}  // namespace
}  // namespace l2r
