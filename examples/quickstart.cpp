// Quickstart: generate a small city world with local-driver trajectories,
// build the learn-to-route (L2R) engine, and route a few queries —
// comparing L2R's answers against the paths local drivers actually took
// and against plain fastest-path routing.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/l2r.h"
#include "eval/datasets.h"
#include "pref/similarity.h"
#include "routing/dijkstra.h"

using namespace l2r;  // NOLINT — example code

int main() {
  // 1. A small synthetic city + trajectory workload (stands in for the
  //    paper's OSM network + GPS data; see DESIGN.md).
  DatasetSpec spec = CityDataset(/*traj_scale=*/0.2);  // ~2000 trajectories
  spec.name = "quickstart-city";
  std::printf("Generating world '%s'...\n", spec.name.c_str());
  auto built = BuildDataset(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "dataset: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const RoadNetwork& net = built->world.net;
  std::printf("  network: %zu vertices, %zu edges\n", net.NumVertices(),
              net.NumEdges());
  std::printf("  trajectories: %zu train, %zu test\n",
              built->split.train.size(), built->split.test.size());

  // 2. Build the L2R engine from the training trajectories.
  L2ROptions options;
  options.time_dependent = true;
  auto router = L2RRouter::Build(&net, built->split.train, options);
  if (!router.ok()) {
    std::fprintf(stderr, "build: %s\n", router.status().ToString().c_str());
    return 1;
  }
  const L2RBuildReport& report = (*router)->build_report();
  for (int p = 0; p < kNumTimePeriods; ++p) {
    const auto& rep = report.period[p];
    if (rep.trajectories == 0) continue;
    std::printf(
        "  [%s] %zu trajs -> %zu regions, %zu T-edges, %zu B-edges "
        "(null-rate %.1f%%)\n",
        p == 0 ? "off-peak" : "peak", rep.trajectories, rep.num_regions,
        rep.num_t_edges, rep.num_b_edges, 100 * rep.transfer_null_rate);
  }

  // 3. Route the first few test queries and compare with ground truth.
  L2RQueryContext ctx = (*router)->MakeContext();
  DijkstraSearch fastest(net);
  const EdgeWeights tt(net, CostFeature::kTravelTime, TimePeriod::kOffPeak);

  std::printf("\n%6s %6s %10s %12s %12s\n", "src", "dst", "method",
              "L2R pSim", "Fastest pSim");
  int shown = 0;
  for (const MatchedTrajectory& t : built->split.test) {
    if (shown >= 8 || t.path.size() < 10) continue;
    const VertexId s = t.path.front();
    const VertexId d = t.path.back();
    auto l2r_route = (*router)->Route(&ctx, s, d, t.departure_time);
    auto fast_route = fastest.ShortestPath(s, d, tt);
    if (!l2r_route.ok() || !fast_route.ok()) continue;
    const double sim_l2r =
        PathSimilarity(net, t.path, l2r_route->path.vertices);
    const double sim_fast = PathSimilarity(net, t.path, fast_route->vertices);
    const char* method =
        l2r_route->method == RouteMethod::kInnerRegionPopular ? "inner"
        : l2r_route->method == RouteMethod::kRegionGraph      ? "region"
                                                              : "fallback";
    std::printf("%6u %6u %10s %11.1f%% %11.1f%%\n", s, d, method,
                100 * sim_l2r, 100 * sim_fast);
    ++shown;
  }

  std::printf("\nDone. L2R routes follow local-driver behaviour; fastest "
              "paths often do not.\n");
  return 0;
}
