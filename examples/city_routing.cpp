// City routing: the paper's headline comparison on a Chengdu-like city —
// L2R against Shortest / Fastest / Dom / TRIP on held-out driver trips,
// reported by distance band and region category (paper Figs. 10-12 in
// miniature).
//
//   ./build/examples/city_routing [traj_scale]

#include <cstdio>
#include <cstdlib>

#include "baselines/dom.h"
#include "baselines/simple_routers.h"
#include "baselines/trip.h"
#include "core/l2r.h"
#include "eval/datasets.h"
#include "eval/harness.h"

using namespace l2r;  // NOLINT — example code

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  const DatasetSpec spec = CityDataset(scale);
  std::printf("Building %s (scale %.2f)...\n", spec.name.c_str(), scale);
  auto built = BuildDataset(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const RoadNetwork& net = built->world.net;

  std::printf("Training L2R on %zu trajectories...\n",
              built->split.train.size());
  L2ROptions options;
  auto l2r = L2RRouter::Build(&net, built->split.train, options);
  if (!l2r.ok()) {
    std::fprintf(stderr, "%s\n", l2r.status().ToString().c_str());
    return 1;
  }

  ShortestRouter shortest(net);
  FastestRouter fastest(net);
  auto dom = DomRouter::Train(&net, built->split.train);
  auto trip = TripRouter::Train(&net, built->split.train);

  const auto queries = BuildQueries(net, built->split.test, 200);
  std::printf("Evaluating %zu held-out queries...\n", queries.size());
  const L2RRouter* router = l2r->get();
  auto categorize = [router](const QueryCase& q) {
    return CategorizeQuery(*router, q);
  };

  std::vector<RouterEval> evals;
  {
    L2RAdapter adapter(router);
    evals.push_back(
        EvaluateRouter(net, queries, spec.buckets, categorize, &adapter));
  }
  evals.push_back(
      EvaluateRouter(net, queries, spec.buckets, categorize, &shortest));
  evals.push_back(
      EvaluateRouter(net, queries, spec.buckets, categorize, &fastest));
  if (dom.ok()) {
    evals.push_back(
        EvaluateRouter(net, queries, spec.buckets, categorize, dom->get()));
  }
  if (trip.ok()) {
    evals.push_back(
        EvaluateRouter(net, queries, spec.buckets, categorize, trip->get()));
  }

  auto eq1 = [](const BucketStats& b) { return b.mean_accuracy_eq1; };
  auto ms = [](const BucketStats& b) { return b.mean_query_ms; };
  PrintComparisonTable(
      "Accuracy by distance (km)", evals,
      [](const RouterEval& ev) -> const std::vector<BucketStats>& {
        return ev.by_distance;
      },
      eq1, "Eq. 1 %");
  PrintComparisonTable(
      "Accuracy by region category", evals,
      [](const RouterEval& ev) -> const std::vector<BucketStats>& {
        return ev.by_region;
      },
      eq1, "Eq. 1 %");
  PrintComparisonTable(
      "Query time by distance (km)", evals,
      [](const RouterEval& ev) -> const std::vector<BucketStats>& {
        return ev.by_distance;
      },
      ms, "ms");
  return 0;
}
