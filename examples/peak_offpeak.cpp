// Peak vs off-peak: the paper builds separate region graphs per period
// (Sec. III, scope (1)) and picks one by departure time. This example
// shows the same query routed at 08:00 (peak) and 12:00 (off-peak) and
// how the recommended paths differ, plus the map-matching substrate in
// action on low-frequency GPS.
//
//   ./build/examples/peak_offpeak

#include <cstdio>

#include "core/l2r.h"
#include "eval/datasets.h"
#include "mapmatch/hmm_matcher.h"
#include "pref/similarity.h"

using namespace l2r;  // NOLINT — example code

int main() {
  DatasetSpec spec = CityDataset(/*traj_scale=*/0.25);
  spec.traj.emit_gps = true;  // keep raw GPS for the map-matching demo
  spec.traj.sample_interval_s = 15;
  std::printf("Building %s...\n", spec.name.c_str());
  auto built = BuildDataset(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const RoadNetwork& net = built->world.net;

  // --- Map matching demo: recover paths from noisy low-frequency GPS.
  std::printf("\nMap matching (HMM, Newson-Krumm) on low-frequency GPS:\n");
  const SpatialGrid grid(net, 250);
  HmmMatchOptions match_options;
  match_options.emission_sigma_m = 15;
  const HmmMapMatcher matcher(net, grid, match_options);
  double sim_sum = 0;
  int matched = 0;
  for (size_t i = 0; i < built->data.gps.size() && matched < 25; ++i) {
    auto result = matcher.Match(built->data.gps[i]);
    if (!result.ok()) continue;
    sim_sum +=
        PathSimilarity(net, built->data.matched[i].path, result->path);
    ++matched;
  }
  std::printf("  %d trajectories matched, mean recovery %.1f%%\n", matched,
              100 * sim_sum / matched);

  // --- Time-dependent routing.
  L2ROptions options;
  options.time_dependent = true;
  auto router = L2RRouter::Build(&net, built->split.train, options);
  if (!router.ok()) {
    std::fprintf(stderr, "%s\n", router.status().ToString().c_str());
    return 1;
  }
  for (int p = 0; p < kNumTimePeriods; ++p) {
    const auto& rep = (*router)->build_report().period[p];
    std::printf("[%s] %zu trajectories -> %zu regions, %zu T-edges\n",
                p == 0 ? "off-peak" : "peak", rep.trajectories,
                rep.num_regions, rep.num_t_edges);
  }

  std::printf("\nSame query, different departure time:\n");
  L2RQueryContext ctx = (*router)->MakeContext();
  int shown = 0;
  for (const MatchedTrajectory& t : built->split.test) {
    if (shown >= 6 || t.path.size() < 20) continue;
    const VertexId s = t.path.front();
    const VertexId d = t.path.back();
    auto off = (*router)->Route(&ctx, s, d, 12 * 3600);   // 12:00
    auto peak = (*router)->Route(&ctx, s, d, 8 * 3600);   // 08:00
    if (!off.ok() || !peak.ok()) continue;
    const double overlap = PathSimilarity(net, off->path.vertices,
                                          peak->path.vertices);
    std::printf(
        "  %5u -> %5u: off-peak %5.0f s (%3zu v), peak %5.0f s (%3zu v), "
        "path overlap %.0f%%\n",
        s, d, off->path.cost, off->path.vertices.size(), peak->path.cost,
        peak->path.cost > 0 ? peak->path.vertices.size() : 0,
        100 * overlap);
    ++shown;
  }
  std::printf("\nPeak routes differ where congestion changes which roads "
              "local drivers prefer.\n");
  return 0;
}
