// Sparse transfer: the paper's core contribution in isolation. We
// deliberately thin the trajectory set so many region pairs have no
// trajectories (B-edges), then show how preferences learned on T-edges
// are transferred across similar region pairs and used to route between
// regions that no trajectory ever connected (the paper's Case 3).
//
//   ./build/examples/sparse_transfer

#include <cstdio>

#include "core/l2r.h"
#include "eval/datasets.h"
#include "pref/similarity.h"

using namespace l2r;  // NOLINT — example code

int main() {
  // A sparse workload: few trajectories relative to the city size.
  DatasetSpec spec = CityDataset(/*traj_scale=*/0.08);
  spec.traj.hotspot_fraction = 0.8;  // concentrate coverage on few corridors
  std::printf("Building sparse workload (%zu trajectories)...\n",
              spec.traj.num_trajectories);
  auto built = BuildDataset(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const RoadNetwork& net = built->world.net;

  L2ROptions options;
  options.time_dependent = false;  // single graph, clearer numbers
  auto router = L2RRouter::Build(&net, built->split.train, options);
  if (!router.ok()) {
    std::fprintf(stderr, "%s\n", router.status().ToString().c_str());
    return 1;
  }

  const RegionGraph& graph = (*router)->region_graph(TimePeriod::kOffPeak);
  const auto& prefs = (*router)->edge_preferences(TimePeriod::kOffPeak);
  const auto& space = (*router)->feature_space();

  std::printf("\nRegion graph: %zu regions, %zu T-edges, %zu B-edges\n",
              graph.NumRegions(), graph.NumTEdges(), graph.NumBEdges());

  // Show transferred preferences on a few B-edges.
  std::printf("\nTransferred preferences on B-edges (no trajectories ever "
              "connected these region pairs):\n");
  int shown = 0;
  size_t with_paths = 0;
  for (uint32_t e = 0; e < graph.NumEdges(); ++e) {
    const RegionEdge& edge = graph.edge(e);
    if (edge.is_t_edge) continue;
    if (!edge.b_paths.empty()) ++with_paths;
    if (shown < 8 && prefs[e].has_value()) {
      std::printf("  B-edge R%u -> R%u: %s, %zu path(s) attached\n",
                  edge.from, edge.to,
                  PreferenceName(*prefs[e], space).c_str(),
                  edge.b_paths.size());
      ++shown;
    }
  }
  std::printf("B-edges with attached paths: %zu of %zu\n", with_paths,
              graph.NumBEdges());

  // Route across a B-edge: endpoints in regions that only B-edges connect.
  std::printf("\nRouting across uncovered region pairs:\n");
  L2RQueryContext ctx = (*router)->MakeContext();
  int routed = 0;
  for (uint32_t e = 0; e < graph.NumEdges() && routed < 5; ++e) {
    const RegionEdge& edge = graph.edge(e);
    if (edge.is_t_edge || edge.b_paths.empty()) continue;
    const VertexId s = graph.region(edge.from).members.front();
    const VertexId d = graph.region(edge.to).members.back();
    if (s == d) continue;
    auto route = (*router)->Route(&ctx, s, d, 12 * 3600);
    if (!route.ok()) continue;
    const char* method =
        route->method == RouteMethod::kRegionGraph       ? "region-graph"
        : route->method == RouteMethod::kPreferenceRoute ? "preference"
        : route->method == RouteMethod::kInnerRegionPopular ? "inner"
                                                            : "fastest";
    std::printf("  %u -> %u (R%u -> R%u): %zu vertices via %s\n", s, d,
                edge.from, edge.to, route->path.vertices.size(), method);
    ++routed;
  }
  std::printf("\nWithout the transfer step these queries would only have "
              "cost-centric answers; with it they reuse preferences from "
              "similar, trajectory-covered region pairs.\n");
  return 0;
}
