// Snapshot cold start: generate a metro-scale world, write it as a
// zero-copy binary snapshot, and compare serving cold-start paths —
// CSV parse-and-rebuild vs mmap of the snapshot image. Finishes by
// routing the same queries on the built and the mapped world and
// checking the answers are identical.
//
//   ./build/examples/snapshot_cold_start [scale]   (default 0.3)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "roadnet/generator.h"
#include "roadnet/io.h"
#include "roadnet/snapshot.h"
#include "roadnet/weights.h"
#include "roadnet/world_source.h"
#include "routing/dijkstra.h"

using namespace l2r;  // NOLINT — example code

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.3;

  std::printf("Generating metro world at scale %.2f...\n", scale);
  Timer gen_timer;
  auto world = GenerateNetwork(MetroScaleConfig(scale));
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  const double gen_s = gen_timer.ElapsedSeconds();
  std::printf("  %zu vertices, %zu edges, %zu patches (%.2fs)\n",
              world->net.NumVertices(), world->net.NumEdges(),
              world->num_patches, gen_s);

  const std::string snap_path = "/tmp/l2r_metro.snap";
  const std::string csv_prefix = "/tmp/l2r_metro";
  Timer write_timer;
  if (auto s = WorldSnapshot::Write(*world, snap_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Snapshot written in %.3fs\n", write_timer.ElapsedSeconds());
  if (auto s = ExportWorldCsv(*world, csv_prefix); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Timer csv_timer;
  auto from_csv = ImportWorldCsv(csv_prefix);
  const double csv_s = csv_timer.ElapsedSeconds();
  if (!from_csv.ok()) {
    std::fprintf(stderr, "%s\n", from_csv.status().ToString().c_str());
    return 1;
  }

  Timer mmap_timer;
  auto mapped = WorldSource::FromSnapshot(snap_path).Acquire();
  const double mmap_s = mmap_timer.ElapsedSeconds();
  if (!mapped.ok()) {
    std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
    return 1;
  }

  std::printf("Cold start: CSV rebuild %.3fs, snapshot mmap %.6fs (%.0fx)\n",
              csv_s, mmap_s, csv_s / mmap_s);
  std::printf("  zero-copy mapping: %s\n",
              mapped->net.snapshot_backed() ? "yes" : "no (heap fallback)");

  // Same route on the built world and the mapped image must match.
  const EdgeWeights w_built(world->net, CostFeature::kTravelTime,
                            TimePeriod::kOffPeak);
  const EdgeWeights w_mapped(mapped->net, CostFeature::kTravelTime,
                             TimePeriod::kOffPeak);
  DijkstraSearch d_built(world->net);
  DijkstraSearch d_mapped(mapped->net);
  const VertexId n = static_cast<VertexId>(world->net.NumVertices());
  int checked = 0;
  for (VertexId s = 1; s < n && checked < 8; s += n / 9 + 1, ++checked) {
    auto a = d_built.ShortestPath(0, s, w_built);
    auto b = d_mapped.ShortestPath(0, s, w_mapped);
    if (a.ok() != b.ok() ||
        (a.ok() && (a->vertices != b->vertices || a->cost != b->cost))) {
      std::fprintf(stderr, "route mismatch at target %u\n", s);
      return 1;
    }
  }
  std::printf("Routes identical on built vs mapped world (%d checked)\n",
              checked);

  std::remove(snap_path.c_str());
  std::remove((csv_prefix + ".vertices.csv").c_str());
  std::remove((csv_prefix + ".edges.csv").c_str());
  return 0;
}
