#!/usr/bin/env python3
"""Schema + sanity validation of BENCH_query_throughput.json artifacts.

Usage: scripts/bench_check.py FILE [FILE ...]

Checks (per file):
  - required top-level keys are present with sane types;
  - latency percentile blocks are monotone (p50 <= p95 <= p99) with a
    positive mean;
  - serving hit rate (when the cache-on pass ran) lies in [0, 1] and
    hits/misses are consistent with it;
  - the thread ladder covers t = 1/2/4/8 with positive QPS;
  - every scenario block has dedup_off/dedup_on with positive QPS,
    duplicate_fraction in [0, 1], routed + collapsed == slots, and both
    determinism flags true;
  - the streaming block (unless skipped with L2R_BENCH_STREAM=0) has a
    poisson and a bursty schedule, each with submitted == completed ==
    slots, monotone non-negative queue-wait percentiles, close-reason
    counts summing to the batch count, and a batch-size histogram that
    sums back to the submitted count (no query lost or double-counted);
  - the duplicate_heavy scenario shows a dedup-on improvement (QPS up and
    mean latency down vs dedup-off) — the structural win, stated as a
    generous >= 1.2x bound so CI noise cannot flake it;
  - the deadline_sweep block (unless L2R_BENCH_DEADLINE_SWEEP=0) has
    strictly increasing deadlines, positive QPS, monotone queue-wait
    percentiles, and a mean batch size that does not shrink as the
    deadline grows (5% tolerance for timing noise);
  - the admission_ab block (unless L2R_BENCH_ADMISSION=0 or the cache /
    budget pass is off) covers the tagged/never/after_n_misses arms with
    consistent hit rates, and the `never` arm really admitted zero
    degraded entries;
  - the overload_sweep block (unless L2R_BENCH_OVERLOAD=0) reports
    ok=true (every point conserved callbacks and shed with
    kResourceExhausted), per-class splits that sum to the totals,
    interactive drain-wait p99 under the SLO (with a noise allowance
    for contended CI cores) at every point, bulk shed at a rate >=
    interactive wherever anything shed, and goodput at overload
    multipliers (>= 2x capacity) within a generous factor of the peak
    — the controller must not collapse under overload;
  - the dynamic_world block (unless L2R_BENCH_DYNAMIC=0 or the cache is
    off) covers incident_injection / rush_hour_transition /
    rolling_closures with strictly increasing epoch numbers across the
    whole suite, zero stale serves at every point (the no-stale-serve
    gate: every post-repair serve byte-matched a cold recompute on the
    new epoch), per-point repair conservation (repaired + full_recompute
    + unroutable == invalidated), every scenario's world restore
    reproducing the epoch-0 bytes, and the single-incident point showing
    repair cost < 30% of a wholesale recompute at >= 70% convergence;
  - the scale_ladder block (unless L2R_BENCH_SCALE_LADDER=0) has strictly
    increasing scales with monotone world footprints, snapshot sizes
    consistent with the in-memory arrays, positive QPS at every rung, a
    snapshot-mmap cold start >= 10x faster than the CSV rebuild at
    every metro-sized rung (scale >= 1.0), and a positive checksum-only
    (trusted-image) open timing;
  - the scale_out block (unless L2R_BENCH_SCALE_OUT=0) covers serving-
    stack runs at t = 1/2/4/8 and drain audits at 1/2/4 overlapping
    drain threads, every rung byte-identical to the bare-router
    reference, hot-path hits a subset of total hits, and QPS at t=4 at
    least 2x the t=1 rung — unless the artifact declares
    `single_core: true` (1 hardware thread: no parallel speedup exists
    to measure, but the identity gates still apply in full).

Exits 0 when every file passes, 1 with a per-violation message otherwise.
CI runs this after each bench pass so a malformed or regressed artifact
fails the PR instead of being uploaded silently.
"""

import json
import sys

REQUIRED_TOP_KEYS = [
    "bench",
    "unix_time",
    "dataset",
    "scale",
    "num_vertices",
    "num_edges",
    "num_queries",
    "failures",
    "mix",
    "methods",
    "latency_us",
    "serving",
    "scenarios",
    "streaming",
    "deadline_sweep",
    "admission_ab",
    "overload_sweep",
    "dynamic_world",
    "scale_ladder",
    "scale_out",
    "deterministic_across_threads",
    "runs",
]

STREAM_SCHEDULES = ["poisson", "bursty"]

SCENARIO_NAMES = [
    "uniform",
    "zipf",
    "commute_burst",
    "adversarial_cold",
    "duplicate_heavy",
]

EXPECTED_THREADS = [1, 2, 4, 8]

EXPECTED_DRAIN_LADDER = [1, 2, 4]

# The scale-out serving ladder must show real parallel speedup on a
# multi-core host: QPS at t=4 >= 2x the t=1 rung. On a host with one
# hardware thread (single_core: true) there is no speedup to measure —
# the byte-identity gates still apply in full there.
MIN_SCALE_OUT_T4_SPEEDUP = 2.0

# duplicate_heavy repeats every query 8x; dedup-on must beat dedup-off by
# at least this factor. Far below the ~8x structural ceiling, far above
# CI timing noise.
MIN_DUP_HEAVY_SPEEDUP = 1.2

ADMISSION_ARMS = ["tagged", "never", "after_n_misses"]

# A longer batch deadline can only grow the mean batch; allow 5% noise.
DEADLINE_BATCH_TOLERANCE = 0.95

# Goodput at overload (multiplier >= 2) must stay within this factor of
# the sweep's peak goodput. Clean runs hold within ~10% of peak; the
# floor is far looser because the sweep measures real time on shared CI
# cores (the capacity estimate itself swings run to run). The gate
# exists to fail a controller that *collapses* under load — goodput
# falling off a cliff past saturation — not to relitigate the tuned
# margin, which the committed artifact documents.
MIN_OVERLOAD_GOODPUT_FRACTION = 0.6

# Same reasoning for the drain-wait SLO: the controller targets slo_us
# and clean runs sit well inside it, but p99 on a contended CI machine
# carries scheduling noise the controller cannot see. Gate at a modest
# multiple so a controller that stops enforcing the SLO still fails.
OVERLOAD_SLO_NOISE_FACTOR = 1.5

DYNAMIC_SCENARIOS = [
    "incident_injection",
    "rush_hour_transition",
    "rolling_closures",
]

# Snapshot mmap must beat the CSV parse-and-rebuild cold start by at
# least this factor once the world is metro-sized (generator scale >=
# 1.0, ~140k vertices). Measured runs sit near 20x even at scale 0.3;
# 10x leaves room for CI page-cache and disk noise while still failing
# a snapshot path that quietly degenerates into a full parse.
MIN_LADDER_COLD_START_SPEEDUP = 10.0
MIN_LADDER_SPEEDUP_SCALE = 1.0

LADDER_POINT_KEYS = [
    "scale",
    "num_vertices",
    "num_edges",
    "world_bytes",
    "snapshot_bytes",
    "gen_seconds",
    "csv_cold_start_seconds",
    "mmap_cold_start_seconds",
    "checksum_only_open_seconds",
    "cold_start_speedup",
    "zero_copy",
    "queries",
    "qps",
    "mean_query_us",
]

# The incident case the repair pass exists for: a single incident's
# repair must cost well under a wholesale recompute and converge for
# most candidates in a bounded round. Settle counts are deterministic,
# so these are exact gates, not noise-padded ones.
MAX_INCIDENT_REPAIR_COST_RATIO = 0.3
MIN_INCIDENT_CONVERGENCE = 0.7

DYNAMIC_POINT_KEYS = [
    "kind",
    "epoch",
    "edges_touched",
    "cached_entries",
    "invalidated",
    "staleness",
    "repaired",
    "full_recompute",
    "unroutable",
    "convergence",
    "repair_settles",
    "wholesale_settles",
    "repair_cost_ratio",
    "stale_serves",
    "serve_misses",
]


class Violation(Exception):
    pass


def require(cond, message):
    if not cond:
        raise Violation(message)


def check_latency_block(block, where):
    for key in ("mean", "p50", "p95", "p99"):
        require(key in block, f"{where}: missing '{key}'")
        require(
            isinstance(block[key], (int, float)),
            f"{where}: '{key}' is not a number",
        )
    require(block["mean"] > 0, f"{where}: mean must be > 0")
    require(
        block["p50"] <= block["p95"] <= block["p99"],
        f"{where}: percentiles not monotone "
        f"(p50={block['p50']}, p95={block['p95']}, p99={block['p99']})",
    )


def check_serving(serving):
    require(isinstance(serving, dict), "serving: not an object")
    for key in ("workload_queries", "distinct_queries", "cache_off"):
        require(key in serving, f"serving: missing '{key}'")
    check_latency_block(serving["cache_off"], "serving.cache_off")
    cache_on = serving.get("cache_on")
    if cache_on is None:
        return  # cache pass skipped (L2R_BENCH_CACHE=0)
    check_latency_block(cache_on, "serving.cache_on")
    hit_rate = cache_on.get("hit_rate")
    require(hit_rate is not None, "serving.cache_on: missing 'hit_rate'")
    require(
        0.0 <= hit_rate <= 1.0,
        f"serving.cache_on: hit_rate {hit_rate} outside [0, 1]",
    )
    hits, misses = cache_on.get("hits", 0), cache_on.get("misses", 0)
    lookups = hits + misses
    if lookups > 0:
        require(
            abs(hit_rate - hits / lookups) < 1e-3,
            f"serving.cache_on: hit_rate {hit_rate} inconsistent with "
            f"hits={hits}, misses={misses}",
        )


def check_runs(runs):
    require(isinstance(runs, list) and runs, "runs: missing or empty")
    threads = [run.get("threads") for run in runs]
    require(
        threads == EXPECTED_THREADS,
        f"runs: thread ladder {threads} != {EXPECTED_THREADS}",
    )
    for run in runs:
        require(
            run.get("qps", 0) > 0,
            f"runs: non-positive qps at t={run.get('threads')}",
        )


def check_scenarios(scenarios):
    require(isinstance(scenarios, dict), "scenarios: not an object")
    for name in SCENARIO_NAMES:
        require(name in scenarios, f"scenarios: missing '{name}'")
        sc = scenarios[name]
        where = f"scenarios.{name}"
        for key in (
            "slots",
            "distinct_used",
            "duplicate_fraction",
            "dedup_off",
            "dedup_on",
            "single_flight",
            "coalesced_identical",
            "deterministic_t1248",
        ):
            require(key in sc, f"{where}: missing '{key}'")
        require(
            0.0 <= sc["duplicate_fraction"] <= 1.0,
            f"{where}: duplicate_fraction outside [0, 1]",
        )
        require(sc["slots"] > 0, f"{where}: slots must be > 0")
        for mode in ("dedup_off", "dedup_on"):
            require(
                sc[mode].get("qps", 0) > 0,
                f"{where}.{mode}: non-positive qps",
            )
            require(
                sc[mode].get("mean_us", 0) > 0,
                f"{where}.{mode}: non-positive mean_us",
            )
        routed = sc["dedup_on"].get("unique_routed", 0)
        collapsed = sc["dedup_on"].get("duplicates_collapsed", 0)
        require(
            routed + collapsed == sc["slots"],
            f"{where}: unique_routed ({routed}) + duplicates_collapsed "
            f"({collapsed}) != slots ({sc['slots']})",
        )
        require(
            sc["coalesced_identical"] is True,
            f"{where}: coalesced results diverged from the uncoalesced run",
        )
        require(
            sc["deterministic_t1248"] is True,
            f"{where}: single-flight ladder diverged across t=1/2/4/8",
        )

    heavy = scenarios["duplicate_heavy"]
    speedup = heavy["dedup_on"]["qps"] / heavy["dedup_off"]["qps"]
    require(
        speedup >= MIN_DUP_HEAVY_SPEEDUP,
        f"scenarios.duplicate_heavy: dedup speedup {speedup:.2f}x below "
        f"the {MIN_DUP_HEAVY_SPEEDUP}x floor",
    )
    require(
        heavy["dedup_on"]["mean_us"] < heavy["dedup_off"]["mean_us"],
        "scenarios.duplicate_heavy: dedup-on mean latency not below "
        "dedup-off",
    )


def check_streaming(streaming):
    if streaming is None:
        return  # streaming pass skipped (L2R_BENCH_STREAM=0)
    require(isinstance(streaming, dict), "streaming: not an object")
    for key in ("max_batch", "batch_deadline_us", "mean_gap_us"):
        require(key in streaming, f"streaming: missing '{key}'")
    max_batch = streaming["max_batch"]
    for name in STREAM_SCHEDULES:
        require(name in streaming, f"streaming: missing '{name}'")
        sc = streaming[name]
        where = f"streaming.{name}"
        for key in (
            "slots",
            "submitted",
            "completed",
            "qps",
            "batches",
            "closed_by_size",
            "closed_by_deadline",
            "closed_by_shutdown",
            "queue_wait_us",
            "batch_size_hist",
        ):
            require(key in sc, f"{where}: missing '{key}'")
        require(sc["slots"] > 0, f"{where}: slots must be > 0")
        require(
            sc["submitted"] == sc["slots"] == sc["completed"],
            f"{where}: submitted ({sc['submitted']}) / completed "
            f"({sc['completed']}) != slots ({sc['slots']}) — "
            "queries were lost or rejected",
        )
        require(sc["qps"] > 0, f"{where}: non-positive qps")
        require(sc["batches"] > 0, f"{where}: no batches closed")
        closes = (
            sc["closed_by_size"]
            + sc["closed_by_deadline"]
            + sc["closed_by_shutdown"]
        )
        require(
            closes == sc["batches"],
            f"{where}: close reasons ({closes}) != batches "
            f"({sc['batches']})",
        )
        wait = sc["queue_wait_us"]
        for key in ("mean", "p50", "p95", "p99"):
            require(key in wait, f"{where}.queue_wait_us: missing '{key}'")
        require(
            wait["mean"] >= 0, f"{where}.queue_wait_us: negative mean"
        )
        require(
            0 <= wait["p50"] <= wait["p95"] <= wait["p99"],
            f"{where}.queue_wait_us: percentiles not monotone "
            f"(p50={wait['p50']}, p95={wait['p95']}, p99={wait['p99']})",
        )
        hist = sc["batch_size_hist"]
        require(
            isinstance(hist, dict) and hist,
            f"{where}: batch_size_hist missing or empty",
        )
        hist_batches = sum(hist.values())
        hist_queries = sum(int(size) * count for size, count in hist.items())
        require(
            all(1 <= int(size) <= max_batch for size in hist),
            f"{where}: batch size outside [1, max_batch={max_batch}]",
        )
        require(
            hist_batches == sc["batches"],
            f"{where}: histogram batches ({hist_batches}) != batches "
            f"({sc['batches']})",
        )
        require(
            hist_queries == sc["submitted"],
            f"{where}: histogram queries ({hist_queries}) != submitted "
            f"({sc['submitted']}) — slots leaked from the histogram",
        )


def check_wait_block(wait, where):
    for key in ("mean", "p50", "p95", "p99"):
        require(key in wait, f"{where}: missing '{key}'")
    require(wait["mean"] >= 0, f"{where}: negative mean")
    require(
        0 <= wait["p50"] <= wait["p95"] <= wait["p99"],
        f"{where}: percentiles not monotone "
        f"(p50={wait['p50']}, p95={wait['p95']}, p99={wait['p99']})",
    )


def check_deadline_sweep(sweep):
    if sweep is None:
        return  # skipped (L2R_BENCH_DEADLINE_SWEEP=0)
    require(isinstance(sweep, dict), "deadline_sweep: not an object")
    for key in ("max_batch", "mean_gap_us", "points"):
        require(key in sweep, f"deadline_sweep: missing '{key}'")
    require(sweep["max_batch"] > 0, "deadline_sweep: max_batch must be > 0")
    points = sweep["points"]
    require(
        isinstance(points, list) and points,
        "deadline_sweep: points missing or empty",
    )
    prev_deadline = 0
    prev_mean_batch = 0.0
    for p in points:
        where = f"deadline_sweep[deadline_us={p.get('deadline_us')}]"
        for key in (
            "deadline_us",
            "qps",
            "mean_batch",
            "closed_by_size",
            "closed_by_deadline",
            "queue_wait_us",
        ):
            require(key in p, f"{where}: missing '{key}'")
        require(
            p["deadline_us"] > prev_deadline,
            f"{where}: deadlines not strictly increasing",
        )
        prev_deadline = p["deadline_us"]
        require(p["qps"] > 0, f"{where}: non-positive qps")
        require(
            1.0 <= p["mean_batch"] <= sweep["max_batch"],
            f"{where}: mean_batch {p['mean_batch']} outside "
            f"[1, max_batch={sweep['max_batch']}]",
        )
        # The latency/throughput tradeoff the sweep exists to expose: a
        # longer deadline can only accumulate bigger batches.
        require(
            p["mean_batch"] >= prev_mean_batch * DEADLINE_BATCH_TOLERANCE,
            f"{where}: mean_batch {p['mean_batch']} shrank vs the shorter "
            f"deadline's {prev_mean_batch}",
        )
        prev_mean_batch = max(prev_mean_batch, p["mean_batch"])
        check_wait_block(p["queue_wait_us"], f"{where}.queue_wait_us")


def check_admission_ab(block):
    if block is None:
        return  # skipped (L2R_BENCH_ADMISSION=0, cache off, or no budget)
    require(isinstance(block, dict), "admission_ab: not an object")
    for key in ("capacity_bytes", "budget_us", "policies"):
        require(key in block, f"admission_ab: missing '{key}'")
    require(
        block["capacity_bytes"] > 0, "admission_ab: non-positive capacity"
    )
    policies = block["policies"]
    names = [p.get("name") for p in policies]
    require(
        names == ADMISSION_ARMS,
        f"admission_ab: arms {names} != {ADMISSION_ARMS}",
    )
    for p in policies:
        where = f"admission_ab.{p['name']}"
        require(p.get("mean_us", 0) > 0, f"{where}: non-positive mean_us")
        hit_rate = p.get("hit_rate")
        require(
            hit_rate is not None and 0.0 <= hit_rate <= 1.0,
            f"{where}: hit_rate outside [0, 1]",
        )
        hits, misses = p.get("hits", 0), p.get("misses", 0)
        if hits + misses > 0:
            require(
                abs(hit_rate - hits / (hits + misses)) < 1e-3,
                f"{where}: hit_rate {hit_rate} inconsistent with "
                f"hits={hits}, misses={misses}",
            )
        if p["name"] == "never":
            require(
                p.get("degraded_admitted", 0) == 0,
                f"{where}: kNever admitted degraded entries",
            )


def check_overload_sweep(sweep):
    if sweep is None:
        return  # skipped (L2R_BENCH_OVERLOAD=0)
    require(isinstance(sweep, dict), "overload_sweep: not an object")
    for key in ("capacity_qps", "bulk_fraction", "slo_us", "ok", "points"):
        require(key in sweep, f"overload_sweep: missing '{key}'")
    require(
        sweep["capacity_qps"] > 0, "overload_sweep: non-positive capacity"
    )
    require(
        sweep["ok"] is True,
        "overload_sweep: ok is false — a point dropped a callback or shed "
        "without kResourceExhausted",
    )
    points = sweep["points"]
    require(
        isinstance(points, list) and points,
        "overload_sweep: points missing or empty",
    )
    slo_us = sweep["slo_us"]
    peak_goodput = max(p.get("goodput_qps", 0) for p in points)
    require(peak_goodput > 0, "overload_sweep: no point served anything")
    for p in points:
        where = f"overload_sweep[x{p.get('multiplier')}]"
        for key in (
            "multiplier",
            "slots",
            "offered_qps",
            "goodput_qps",
            "submitted",
            "completed",
            "shed",
            "conserved",
            "shed_status_ok",
            "interactive",
            "bulk",
            "interactive_drain_wait_us",
            "controller",
        ):
            require(key in p, f"{where}: missing '{key}'")
        require(p["conserved"] is True, f"{where}: callbacks not conserved")
        require(
            p["shed_status_ok"] is True,
            f"{where}: a shed callback lacked kResourceExhausted",
        )
        interactive, bulk = p["interactive"], p["bulk"]
        require(
            interactive["submitted"] + bulk["submitted"] == p["submitted"],
            f"{where}: per-class submitted does not sum to the total",
        )
        require(
            interactive["shed"] + bulk["shed"] == p["shed"],
            f"{where}: per-class shed does not sum to the total",
        )
        require(
            p["completed"] + p["shed"] == p["submitted"],
            f"{where}: completed ({p['completed']}) + shed ({p['shed']}) "
            f"!= submitted ({p['submitted']})",
        )
        wait = p["interactive_drain_wait_us"]
        check_wait_block(wait, f"{where}.interactive_drain_wait_us")
        require(
            wait["p99"] <= slo_us * OVERLOAD_SLO_NOISE_FACTOR,
            f"{where}: interactive drain-wait p99 {wait['p99']} breaks the "
            f"{slo_us}us SLO even with the {OVERLOAD_SLO_NOISE_FACTOR}x "
            "noise allowance",
        )
        # Bulk sheds first: wherever anything shed, the bulk shed *rate*
        # must be at least the interactive one.
        if p["shed"] > 0 and bulk["submitted"] > 0:
            bulk_rate = bulk["shed"] / bulk["submitted"]
            inter_rate = (
                interactive["shed"] / interactive["submitted"]
                if interactive["submitted"] > 0
                else 0.0
            )
            require(
                bulk_rate >= inter_rate,
                f"{where}: bulk shed rate {bulk_rate:.3f} below "
                f"interactive {inter_rate:.3f} — class priority inverted",
            )
        if p["multiplier"] >= 2.0:
            require(
                p["goodput_qps"]
                >= MIN_OVERLOAD_GOODPUT_FRACTION * peak_goodput,
                f"{where}: goodput {p['goodput_qps']:.0f} collapsed below "
                f"{MIN_OVERLOAD_GOODPUT_FRACTION:.0%} of the sweep peak "
                f"{peak_goodput:.0f}",
            )
        ctl = p["controller"]
        for key in (
            "ticks",
            "overloaded_ticks",
            "deadline_cuts",
            "deadline_recoveries",
            "level_raises",
            "level_drops",
            "final_level",
            "final_deadline_us",
        ):
            require(key in ctl, f"{where}.controller: missing '{key}'")
        require(ctl["ticks"] > 0, f"{where}: the controller never ticked")


def check_dynamic_world(block):
    if block is None:
        return  # skipped (L2R_BENCH_DYNAMIC=0 or cache off)
    require(isinstance(block, dict), "dynamic_world: not an object")
    for key in (
        "pool_queries",
        "incident_sites",
        "ok",
        "incident_repair_cost_ratio",
        "incident_convergence",
        "scenarios",
    ):
        require(key in block, f"dynamic_world: missing '{key}'")
    require(
        block["ok"] is True,
        "dynamic_world: ok is false — an in-bench gate tripped "
        "(stale serve, broken restore, non-monotone epoch, or the "
        "incident repair bound)",
    )
    require(
        block["pool_queries"] > 0, "dynamic_world: empty query pool"
    )
    require(
        block["incident_sites"] > 0, "dynamic_world: no incident sites"
    )
    scenarios = block["scenarios"]
    names = [s.get("name") for s in scenarios]
    require(
        names == DYNAMIC_SCENARIOS,
        f"dynamic_world: scenarios {names} != {DYNAMIC_SCENARIOS}",
    )
    prev_epoch = 0
    for sc in scenarios:
        where = f"dynamic_world.{sc['name']}"
        require(
            sc.get("epochs_monotone") is True,
            f"{where}: epochs not monotone within the scenario",
        )
        require(
            sc.get("stale_serves") == 0,
            f"{where}: {sc.get('stale_serves')} serves diverged from the "
            "cold recompute — a stale entry was answered",
        )
        require(
            sc.get("restored_identical") is True,
            f"{where}: the restore batch did not reproduce the epoch-0 "
            "bytes — an update leaked into the restored world",
        )
        points = sc.get("points")
        require(
            isinstance(points, list) and points,
            f"{where}: points missing or empty",
        )
        for p in points:
            pwhere = f"{where}[epoch={p.get('epoch')}]"
            for key in DYNAMIC_POINT_KEYS:
                require(key in p, f"{pwhere}: missing '{key}'")
            require(
                p["epoch"] > prev_epoch,
                f"{pwhere}: epoch not strictly increasing across the "
                f"suite (prev {prev_epoch})",
            )
            prev_epoch = p["epoch"]
            require(
                p["stale_serves"] == 0,
                f"{pwhere}: {p['stale_serves']} stale serves",
            )
            require(
                p["repaired"] + p["full_recompute"] + p["unroutable"]
                == p["invalidated"],
                f"{pwhere}: repaired ({p['repaired']}) + full_recompute "
                f"({p['full_recompute']}) + unroutable "
                f"({p['unroutable']}) != invalidated "
                f"({p['invalidated']}) — repair candidates leaked",
            )
            require(
                p["invalidated"] <= p["cached_entries"],
                f"{pwhere}: invalidated exceeds the cached entries",
            )
            require(
                0.0 <= p["staleness"] <= 1.0,
                f"{pwhere}: staleness outside [0, 1]",
            )
            require(
                0.0 <= p["convergence"] <= 1.0,
                f"{pwhere}: convergence outside [0, 1]",
            )
            require(
                p["wholesale_settles"] > 0,
                f"{pwhere}: wholesale recompute settled nothing",
            )
    first = scenarios[0]["points"][0]
    require(
        first["kind"] == "inject",
        "dynamic_world: first incident point is not an inject",
    )
    ratio = block["incident_repair_cost_ratio"]
    conv = block["incident_convergence"]
    require(
        abs(first["repair_cost_ratio"] - ratio) < 1e-6,
        "dynamic_world: incident_repair_cost_ratio inconsistent with the "
        "first inject point",
    )
    require(
        ratio < MAX_INCIDENT_REPAIR_COST_RATIO,
        f"dynamic_world: single-incident repair cost ratio {ratio} not "
        f"under {MAX_INCIDENT_REPAIR_COST_RATIO}",
    )
    require(
        conv >= MIN_INCIDENT_CONVERGENCE,
        f"dynamic_world: single-incident convergence {conv} below "
        f"{MIN_INCIDENT_CONVERGENCE}",
    )


def check_scale_ladder(block):
    if block is None:
        return  # skipped (L2R_BENCH_SCALE_LADDER=0)
    require(isinstance(block, dict), "scale_ladder: not an object")
    require("scales" in block, "scale_ladder: missing 'scales'")
    points = block["scales"]
    require(
        isinstance(points, list) and points,
        "scale_ladder: scales missing or empty",
    )
    prev = None
    for p in points:
        where = f"scale_ladder[scale={p.get('scale')}]"
        for key in LADDER_POINT_KEYS:
            require(key in p, f"{where}: missing '{key}'")
        require(p["num_vertices"] > 0, f"{where}: empty world")
        require(p["num_edges"] > 0, f"{where}: no edges")
        require(p["qps"] > 0, f"{where}: non-positive qps")
        require(
            p["csv_cold_start_seconds"] > 0
            and p["mmap_cold_start_seconds"] > 0,
            f"{where}: non-positive cold-start timing",
        )
        require(
            p["checksum_only_open_seconds"] > 0,
            f"{where}: non-positive checksum-only open timing",
        )
        # The snapshot image is the world arrays plus fixed-size header,
        # section table, and alignment padding — never more than a few KB
        # of overhead, and never smaller than the arrays it contains.
        require(
            0
            <= p["snapshot_bytes"] - p["world_bytes"]
            <= 64 * 1024,
            f"{where}: snapshot_bytes {p['snapshot_bytes']} inconsistent "
            f"with world_bytes {p['world_bytes']}",
        )
        if prev is not None:
            require(
                p["scale"] > prev["scale"],
                f"{where}: scales not strictly increasing",
            )
            require(
                p["num_vertices"] > prev["num_vertices"]
                and p["world_bytes"] > prev["world_bytes"],
                f"{where}: footprint not monotone with scale "
                f"({prev['num_vertices']} -> {p['num_vertices']} vertices, "
                f"{prev['world_bytes']} -> {p['world_bytes']} bytes)",
            )
        prev = p
        if p["scale"] >= MIN_LADDER_SPEEDUP_SCALE:
            require(
                p["cold_start_speedup"] >= MIN_LADDER_COLD_START_SPEEDUP,
                f"{where}: cold-start speedup {p['cold_start_speedup']}x "
                f"below the {MIN_LADDER_COLD_START_SPEEDUP}x floor — the "
                "mmap path is not materially faster than the CSV rebuild",
            )


def check_scale_out(block):
    if block is None:
        return  # skipped (L2R_BENCH_SCALE_OUT=0)
    require(isinstance(block, dict), "scale_out: not an object")
    for key in ("hw_threads", "single_core", "serving_runs", "drain_audits"):
        require(key in block, f"scale_out: missing '{key}'")
    require(block["hw_threads"] >= 1, "scale_out: hw_threads < 1")
    single_core = block["single_core"]
    require(
        isinstance(single_core, bool),
        "scale_out: single_core is not a boolean",
    )
    if single_core:
        require(
            block["hw_threads"] == 1,
            "scale_out: single_core claimed with more than one hardware "
            "thread — the escape hatch only covers 1-thread hosts",
        )

    runs = block["serving_runs"]
    threads = [run.get("threads") for run in runs]
    require(
        threads == EXPECTED_THREADS,
        f"scale_out: serving ladder {threads} != {EXPECTED_THREADS}",
    )
    qps_by_threads = {}
    for run in runs:
        where = f"scale_out.serving_runs[t={run.get('threads')}]"
        require(run.get("qps", 0) > 0, f"{where}: non-positive qps")
        require(
            run.get("identical") is True,
            f"{where}: serving-stack results diverged from the "
            "bare-router reference",
        )
        qps_by_threads[run["threads"]] = run["qps"]
    if not single_core:
        speedup = qps_by_threads[4] / qps_by_threads[1]
        require(
            speedup >= MIN_SCALE_OUT_T4_SPEEDUP,
            f"scale_out: t=4 speedup {speedup:.2f}x below the "
            f"{MIN_SCALE_OUT_T4_SPEEDUP}x floor on a "
            f"{block['hw_threads']}-thread host",
        )

    audits = block["drain_audits"]
    drains = [a.get("drains") for a in audits]
    require(
        drains == EXPECTED_DRAIN_LADDER,
        f"scale_out: drain ladder {drains} != {EXPECTED_DRAIN_LADDER}",
    )
    for a in audits:
        where = f"scale_out.drain_audits[drains={a.get('drains')}]"
        require(a.get("qps", 0) > 0, f"{where}: non-positive qps")
        require(
            a.get("identical") is True,
            f"{where}: streamed results diverged from the reference — "
            "overlapping drains broke byte identity",
        )
        require(a.get("batches", 0) > 0, f"{where}: no batches drained")
        hits, hot_hits = a.get("hits", 0), a.get("hot_hits", 0)
        require(
            0 <= hot_hits <= hits,
            f"{where}: hot_hits {hot_hits} exceeds total hits {hits} — "
            "the seqlock hot path is a subset of the hit count",
        )


def check_file(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    for key in REQUIRED_TOP_KEYS:
        require(key in data, f"missing top-level key '{key}'")
    require(
        data["bench"] == "query_throughput",
        f"bench label '{data['bench']}' != 'query_throughput'",
    )
    require(data["num_queries"] > 0, "num_queries must be > 0")
    require(data["failures"] == 0, f"{data['failures']} routing failures")
    check_latency_block(data["latency_us"], "latency_us")
    check_serving(data["serving"])
    check_runs(data["runs"])
    check_scenarios(data["scenarios"])
    check_streaming(data["streaming"])
    check_deadline_sweep(data["deadline_sweep"])
    check_admission_ab(data["admission_ab"])
    check_overload_sweep(data["overload_sweep"])
    check_dynamic_world(data["dynamic_world"])
    check_scale_ladder(data["scale_ladder"])
    check_scale_out(data["scale_out"])
    require(
        data["deterministic_across_threads"] is True,
        "deterministic_across_threads is not true",
    )


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            check_file(path)
        except Violation as violation:
            print(f"bench_check: {path}: {violation}", file=sys.stderr)
            failed = True
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_check: {path}: unreadable: {error}", file=sys.stderr)
            failed = True
        except (KeyError, TypeError, AttributeError, ValueError,
                ZeroDivisionError) as error:
            # A truncated or shape-mangled artifact (e.g. a bench process
            # killed mid-write) trips a structural error before a named
            # check does. One line, not a traceback: CI logs stay
            # readable and the exit code still fails the job.
            print(
                f"bench_check: {path}: malformed artifact "
                f"({type(error).__name__}: {error}) — file is truncated "
                f"or not a query_throughput report",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"bench_check: {path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
