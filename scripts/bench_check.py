#!/usr/bin/env python3
"""Schema + sanity validation of BENCH_query_throughput.json artifacts.

Usage: scripts/bench_check.py FILE [FILE ...]

Checks (per file):
  - required top-level keys are present with sane types;
  - latency percentile blocks are monotone (p50 <= p95 <= p99) with a
    positive mean;
  - serving hit rate (when the cache-on pass ran) lies in [0, 1] and
    hits/misses are consistent with it;
  - the thread ladder covers t = 1/2/4/8 with positive QPS;
  - every scenario block has dedup_off/dedup_on with positive QPS,
    duplicate_fraction in [0, 1], routed + collapsed == slots, and both
    determinism flags true;
  - the streaming block (unless skipped with L2R_BENCH_STREAM=0) has a
    poisson and a bursty schedule, each with submitted == completed ==
    slots, monotone non-negative queue-wait percentiles, close-reason
    counts summing to the batch count, and a batch-size histogram that
    sums back to the submitted count (no query lost or double-counted);
  - the duplicate_heavy scenario shows a dedup-on improvement (QPS up and
    mean latency down vs dedup-off) — the structural win, stated as a
    generous >= 1.2x bound so CI noise cannot flake it.

Exits 0 when every file passes, 1 with a per-violation message otherwise.
CI runs this after each bench pass so a malformed or regressed artifact
fails the PR instead of being uploaded silently.
"""

import json
import sys

REQUIRED_TOP_KEYS = [
    "bench",
    "unix_time",
    "dataset",
    "scale",
    "num_vertices",
    "num_edges",
    "num_queries",
    "failures",
    "mix",
    "methods",
    "latency_us",
    "serving",
    "scenarios",
    "streaming",
    "deterministic_across_threads",
    "runs",
]

STREAM_SCHEDULES = ["poisson", "bursty"]

SCENARIO_NAMES = [
    "uniform",
    "zipf",
    "commute_burst",
    "adversarial_cold",
    "duplicate_heavy",
]

EXPECTED_THREADS = [1, 2, 4, 8]

# duplicate_heavy repeats every query 8x; dedup-on must beat dedup-off by
# at least this factor. Far below the ~8x structural ceiling, far above
# CI timing noise.
MIN_DUP_HEAVY_SPEEDUP = 1.2


class Violation(Exception):
    pass


def require(cond, message):
    if not cond:
        raise Violation(message)


def check_latency_block(block, where):
    for key in ("mean", "p50", "p95", "p99"):
        require(key in block, f"{where}: missing '{key}'")
        require(
            isinstance(block[key], (int, float)),
            f"{where}: '{key}' is not a number",
        )
    require(block["mean"] > 0, f"{where}: mean must be > 0")
    require(
        block["p50"] <= block["p95"] <= block["p99"],
        f"{where}: percentiles not monotone "
        f"(p50={block['p50']}, p95={block['p95']}, p99={block['p99']})",
    )


def check_serving(serving):
    require(isinstance(serving, dict), "serving: not an object")
    for key in ("workload_queries", "distinct_queries", "cache_off"):
        require(key in serving, f"serving: missing '{key}'")
    check_latency_block(serving["cache_off"], "serving.cache_off")
    cache_on = serving.get("cache_on")
    if cache_on is None:
        return  # cache pass skipped (L2R_BENCH_CACHE=0)
    check_latency_block(cache_on, "serving.cache_on")
    hit_rate = cache_on.get("hit_rate")
    require(hit_rate is not None, "serving.cache_on: missing 'hit_rate'")
    require(
        0.0 <= hit_rate <= 1.0,
        f"serving.cache_on: hit_rate {hit_rate} outside [0, 1]",
    )
    hits, misses = cache_on.get("hits", 0), cache_on.get("misses", 0)
    lookups = hits + misses
    if lookups > 0:
        require(
            abs(hit_rate - hits / lookups) < 1e-3,
            f"serving.cache_on: hit_rate {hit_rate} inconsistent with "
            f"hits={hits}, misses={misses}",
        )


def check_runs(runs):
    require(isinstance(runs, list) and runs, "runs: missing or empty")
    threads = [run.get("threads") for run in runs]
    require(
        threads == EXPECTED_THREADS,
        f"runs: thread ladder {threads} != {EXPECTED_THREADS}",
    )
    for run in runs:
        require(
            run.get("qps", 0) > 0,
            f"runs: non-positive qps at t={run.get('threads')}",
        )


def check_scenarios(scenarios):
    require(isinstance(scenarios, dict), "scenarios: not an object")
    for name in SCENARIO_NAMES:
        require(name in scenarios, f"scenarios: missing '{name}'")
        sc = scenarios[name]
        where = f"scenarios.{name}"
        for key in (
            "slots",
            "distinct_used",
            "duplicate_fraction",
            "dedup_off",
            "dedup_on",
            "single_flight",
            "coalesced_identical",
            "deterministic_t1248",
        ):
            require(key in sc, f"{where}: missing '{key}'")
        require(
            0.0 <= sc["duplicate_fraction"] <= 1.0,
            f"{where}: duplicate_fraction outside [0, 1]",
        )
        require(sc["slots"] > 0, f"{where}: slots must be > 0")
        for mode in ("dedup_off", "dedup_on"):
            require(
                sc[mode].get("qps", 0) > 0,
                f"{where}.{mode}: non-positive qps",
            )
            require(
                sc[mode].get("mean_us", 0) > 0,
                f"{where}.{mode}: non-positive mean_us",
            )
        routed = sc["dedup_on"].get("unique_routed", 0)
        collapsed = sc["dedup_on"].get("duplicates_collapsed", 0)
        require(
            routed + collapsed == sc["slots"],
            f"{where}: unique_routed ({routed}) + duplicates_collapsed "
            f"({collapsed}) != slots ({sc['slots']})",
        )
        require(
            sc["coalesced_identical"] is True,
            f"{where}: coalesced results diverged from the uncoalesced run",
        )
        require(
            sc["deterministic_t1248"] is True,
            f"{where}: single-flight ladder diverged across t=1/2/4/8",
        )

    heavy = scenarios["duplicate_heavy"]
    speedup = heavy["dedup_on"]["qps"] / heavy["dedup_off"]["qps"]
    require(
        speedup >= MIN_DUP_HEAVY_SPEEDUP,
        f"scenarios.duplicate_heavy: dedup speedup {speedup:.2f}x below "
        f"the {MIN_DUP_HEAVY_SPEEDUP}x floor",
    )
    require(
        heavy["dedup_on"]["mean_us"] < heavy["dedup_off"]["mean_us"],
        "scenarios.duplicate_heavy: dedup-on mean latency not below "
        "dedup-off",
    )


def check_streaming(streaming):
    if streaming is None:
        return  # streaming pass skipped (L2R_BENCH_STREAM=0)
    require(isinstance(streaming, dict), "streaming: not an object")
    for key in ("max_batch", "batch_deadline_us", "mean_gap_us"):
        require(key in streaming, f"streaming: missing '{key}'")
    max_batch = streaming["max_batch"]
    for name in STREAM_SCHEDULES:
        require(name in streaming, f"streaming: missing '{name}'")
        sc = streaming[name]
        where = f"streaming.{name}"
        for key in (
            "slots",
            "submitted",
            "completed",
            "qps",
            "batches",
            "closed_by_size",
            "closed_by_deadline",
            "closed_by_shutdown",
            "queue_wait_us",
            "batch_size_hist",
        ):
            require(key in sc, f"{where}: missing '{key}'")
        require(sc["slots"] > 0, f"{where}: slots must be > 0")
        require(
            sc["submitted"] == sc["slots"] == sc["completed"],
            f"{where}: submitted ({sc['submitted']}) / completed "
            f"({sc['completed']}) != slots ({sc['slots']}) — "
            "queries were lost or rejected",
        )
        require(sc["qps"] > 0, f"{where}: non-positive qps")
        require(sc["batches"] > 0, f"{where}: no batches closed")
        closes = (
            sc["closed_by_size"]
            + sc["closed_by_deadline"]
            + sc["closed_by_shutdown"]
        )
        require(
            closes == sc["batches"],
            f"{where}: close reasons ({closes}) != batches "
            f"({sc['batches']})",
        )
        wait = sc["queue_wait_us"]
        for key in ("mean", "p50", "p95", "p99"):
            require(key in wait, f"{where}.queue_wait_us: missing '{key}'")
        require(
            wait["mean"] >= 0, f"{where}.queue_wait_us: negative mean"
        )
        require(
            0 <= wait["p50"] <= wait["p95"] <= wait["p99"],
            f"{where}.queue_wait_us: percentiles not monotone "
            f"(p50={wait['p50']}, p95={wait['p95']}, p99={wait['p99']})",
        )
        hist = sc["batch_size_hist"]
        require(
            isinstance(hist, dict) and hist,
            f"{where}: batch_size_hist missing or empty",
        )
        hist_batches = sum(hist.values())
        hist_queries = sum(int(size) * count for size, count in hist.items())
        require(
            all(1 <= int(size) <= max_batch for size in hist),
            f"{where}: batch size outside [1, max_batch={max_batch}]",
        )
        require(
            hist_batches == sc["batches"],
            f"{where}: histogram batches ({hist_batches}) != batches "
            f"({sc['batches']})",
        )
        require(
            hist_queries == sc["submitted"],
            f"{where}: histogram queries ({hist_queries}) != submitted "
            f"({sc['submitted']}) — slots leaked from the histogram",
        )


def check_file(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    for key in REQUIRED_TOP_KEYS:
        require(key in data, f"missing top-level key '{key}'")
    require(
        data["bench"] == "query_throughput",
        f"bench label '{data['bench']}' != 'query_throughput'",
    )
    require(data["num_queries"] > 0, "num_queries must be > 0")
    require(data["failures"] == 0, f"{data['failures']} routing failures")
    check_latency_block(data["latency_us"], "latency_us")
    check_serving(data["serving"])
    check_runs(data["runs"])
    check_scenarios(data["scenarios"])
    check_streaming(data["streaming"])
    require(
        data["deterministic_across_threads"] is True,
        "deterministic_across_threads is not true",
    )


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            check_file(path)
        except Violation as violation:
            print(f"bench_check: {path}: {violation}", file=sys.stderr)
            failed = True
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_check: {path}: unreadable: {error}", file=sys.stderr)
            failed = True
        except (KeyError, TypeError, AttributeError, ValueError,
                ZeroDivisionError) as error:
            # A truncated or shape-mangled artifact (e.g. a bench process
            # killed mid-write) trips a structural error before a named
            # check does. One line, not a traceback: CI logs stay
            # readable and the exit code still fails the job.
            print(
                f"bench_check: {path}: malformed artifact "
                f"({type(error).__name__}: {error}) — file is truncated "
                f"or not a query_throughput report",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"bench_check: {path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
