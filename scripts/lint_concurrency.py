#!/usr/bin/env python3
"""Lock-discipline lint for the l2r tree (run by CI's lint step).

Six checks, all textual (no compiler needed), tuned to this repo's
conventions:

1. src/: no raw ``std::mutex`` / ``std::condition_variable`` members —
   shared state must use the annotated ``l2r::Mutex`` / ``l2r::CondVar``
   capability types from common/mutex.h so Clang's -Wthread-safety can
   see every acquisition. The wrapper itself is exempted with a
   ``// lint:allow-raw-mutex`` marker on the member's line.

2. src/: every ``Mutex`` / ``SharedMutex`` member declaration must have
   a visible relationship with the analysis — either some
   ``L2R_GUARDED_BY(that mutex)`` / ``L2R_REQUIRES`` / ``L2R_ACQUIRE``
   / ``L2R_EXCLUDES`` mention of it (shared variants included) elsewhere
   in the same file, or a justification marker
   ``// lint:standalone-mutex(reason)`` on its line (for mutexes that
   guard an effect rather than data, e.g. log interleaving).

3. src/: no *naked* ``.load()`` / ``.store(x)`` on atomics — every atomic
   access spells its ``std::memory_order`` so the ordering contract is a
   reviewed decision, not a silent seq_cst default (see
   serve/admission_policy.h for the reference rationale).

4. src/: every atomic access to an epoch field (identifier containing
   ``epoch``) must carry a documented memory-order rationale — a comment
   on the same line or within the preceding few lines mentioning
   acquire / release / relaxed / seq_cst or "order". Epoch numbers are
   the dynamic world's publication protocol (world/update_channel.h):
   an epoch load pairing with the wrong store order silently serves
   stale bytes, so the pairing must be written down where the access is.

5. src/: every atomic access to a sequence-lock field (identifier
   containing ``seq``, e.g. the counter inside common/seqlock.h or a
   seqlock-published payload member) must carry a documented memory-order
   rationale, exactly like the epoch rule. Seqlock correctness lives
   entirely in the fence/order pairing (Boehm, MSPC'12): a reader
   validating with the wrong order admits torn payloads silently, so the
   pairing must be written down where the access is. ``seq_cst`` in a
   spelled order does not trip this (word-boundary match on ``seq``).

6. tests/: no ``sleep_for`` — timing tests must use the Clock seam
   (serve/clock.h) or observable-state spin loops; real sleeps make the
   suite slow and flaky in equal measure.

Exit status: 0 clean, 1 findings (one line each), 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

ALLOW_RAW = "lint:allow-raw-mutex"
STANDALONE = "lint:standalone-mutex"

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|condition_variable"
    r"|condition_variable_any)\s+\w+\s*;"
)
# A `Mutex foo;` / `mutable SharedMutex foo;` member or local declaration.
MUTEX_DECL_RE = re.compile(r"\b(?:mutable\s+)?(?:Shared)?Mutex\s+(\w+)\s*;")
ANNOTATION_RE = re.compile(
    r"\bL2R_(GUARDED_BY|PT_GUARDED_BY|REQUIRES(?:_SHARED)?"
    r"|ACQUIRE(?:_SHARED)?|RELEASE(?:_SHARED)?|TRY_ACQUIRE(?:_SHARED)?"
    r"|EXCLUDES|RETURN_CAPABILITY|ASSERT_CAPABILITY)\s*\(([^)]*)\)"
)
NAKED_LOAD_RE = re.compile(r"\.\s*load\s*\(\s*\)")
NAKED_STORE_RE = re.compile(r"\.\s*store\s*\(\s*[^,()]*(\([^()]*\)[^,()]*)?\)\s*;")
SLEEP_RE = re.compile(r"\bsleep_for\s*\(")
# An atomic access whose object identifier names an epoch (the dynamic
# world's publication counters): epoch_.load(...), floor epoch tables
# indexed as last_epoch[p].store(...), fetch_add bumps, CAS maxes.
EPOCH_ATOMIC_RE = re.compile(
    r"\b\w*[Ee]poch\w*(?:\s*\[[^\]]*\])?\s*\.\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|compare_exchange_\w+)\s*\("
)
# An atomic access whose object identifier names a sequence counter or a
# seqlock-published payload field (common/seqlock.h): seq_.load(...),
# slot.seq.store(...), seq_table[i].fetch_add(...).
SEQ_ATOMIC_RE = re.compile(
    r"\b\w*[Ss]eq\w*(?:\s*\[[^\]]*\])?\s*\.\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|compare_exchange_\w+)\s*\("
)
# What counts as a documented order rationale near the access.
ORDER_COMMENT_RE = re.compile(
    r"acquire|release|relaxed|seq_cst|order", re.IGNORECASE
)
# How many raw lines above the access the rationale may sit.
EPOCH_COMMENT_WINDOW = 6


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments (and string literals), preserving
    line structure so reported line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("\\\\")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def _has_order_comment(raw_lines: list[str], code_lines: list[str],
                       idx: int) -> bool:
    """True when a comment on line `idx` or within the preceding window
    states the ordering rationale. Only comment text counts: the spelled
    std::memory_order argument in the code is check 3's business, the
    epoch rule wants the *pairing* written down."""
    lo = max(0, idx - EPOCH_COMMENT_WINDOW)
    for j in range(lo, idx + 1):
        raw = raw_lines[j] if j < len(raw_lines) else ""
        code = code_lines[j] if j < len(code_lines) else ""
        if "//" in raw:
            comment = raw[raw.index("//"):]
        elif not code.strip():
            # Inside a /* */ block (the stripped line is blank): the raw
            # line is all comment.
            comment = raw
        else:
            continue
        if ORDER_COMMENT_RE.search(comment):
            return True
    return False


def lint_src_file(path: Path) -> list[str]:
    raw_text = path.read_text(encoding="utf-8")
    raw_lines = raw_text.splitlines()
    code = strip_comments(raw_text)
    code_lines = code.splitlines()
    rel = path.relative_to(REPO)
    findings: list[str] = []

    # Which mutex names appear inside some annotation's argument list
    # anywhere in this file (handles `mu`, `shard.mu`, `flight.mu` ...).
    annotated_names: set[str] = set()
    for m in ANNOTATION_RE.finditer(code):
        for tok in re.findall(r"\w+", m.group(2)):
            annotated_names.add(tok)

    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        raw_line = raw_lines[idx] if idx < len(raw_lines) else ""

        if RAW_MUTEX_RE.search(line) and ALLOW_RAW not in raw_line:
            findings.append(
                f"{rel}:{lineno}: raw std:: synchronization member — use "
                f"l2r::Mutex / l2r::CondVar (common/mutex.h) so "
                f"-Wthread-safety sees it, or mark `// {ALLOW_RAW}`"
            )

        decl = MUTEX_DECL_RE.search(line)
        if decl and STANDALONE not in raw_line:
            name = decl.group(1)
            if name not in annotated_names:
                findings.append(
                    f"{rel}:{lineno}: Mutex `{name}` has no "
                    f"L2R_GUARDED_BY/REQUIRES/ACQUIRE/EXCLUDES relationship "
                    f"in this file — annotate what it protects, or mark "
                    f"`// {STANDALONE}(reason)`"
                )

        if EPOCH_ATOMIC_RE.search(line):
            if not _has_order_comment(raw_lines, code_lines, idx):
                findings.append(
                    f"{rel}:{lineno}: atomic epoch access without a "
                    f"documented memory-order rationale — comment the "
                    f"acquire/release/relaxed pairing on or just above "
                    f"the access (see world/update_channel.h)"
                )

        if SEQ_ATOMIC_RE.search(line):
            if not _has_order_comment(raw_lines, code_lines, idx):
                findings.append(
                    f"{rel}:{lineno}: atomic access to a seq-named field "
                    f"without a documented memory-order rationale — "
                    f"seqlock correctness is its fence/order pairing; "
                    f"comment it on or just above the access (see "
                    f"common/seqlock.h)"
                )

        if NAKED_LOAD_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: naked atomic .load() — spell the "
                f"std::memory_order (see serve/admission_policy.h for the "
                f"ordering rationale conventions)"
            )
        if NAKED_STORE_RE.search(line):
            m = NAKED_STORE_RE.search(line)
            if m and "memory_order" not in m.group(0):
                findings.append(
                    f"{rel}:{lineno}: naked atomic .store(value) — spell "
                    f"the std::memory_order"
                )

    return findings


def lint_test_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO)
    code = strip_comments(path.read_text(encoding="utf-8"))
    findings = []
    for idx, line in enumerate(code.splitlines()):
        if SLEEP_RE.search(line):
            findings.append(
                f"{rel}:{idx + 1}: sleep_for in a test — drive timing "
                f"through the Clock seam (serve/clock.h) or spin on "
                f"observable state with yield()"
            )
    return findings


def main() -> int:
    if len(sys.argv) > 1:
        print(f"usage: {sys.argv[0]} (no arguments; lints src/ and tests/)",
              file=sys.stderr)
        return 2
    findings: list[str] = []
    src = REPO / "src"
    tests = REPO / "tests"
    if not src.is_dir() or not tests.is_dir():
        print("lint_concurrency: src/ or tests/ missing — run from the "
              "repo (script resolves paths relative to itself)",
              file=sys.stderr)
        return 2
    for path in sorted(src.rglob("*.h")) + sorted(src.rglob("*.cc")):
        findings.extend(lint_src_file(path))
    for path in sorted(tests.rglob("*.h")) + sorted(tests.rglob("*.cc")):
        findings.extend(lint_test_file(path))
    for f in findings:
        print(f)
    if findings:
        print(f"lint_concurrency: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("lint_concurrency: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
