#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest run.
#
# Usage: scripts/verify.sh [options] [build-dir]
#   --tsan    ThreadSanitizer build (-DL2R_TSAN=ON): fast suite + the
#             `tsan`-labelled concurrency stress suite, with tsan.supp
#             loaded — mirrors the CI `tsan` job. Default build dir:
#             build-tsan.
#   --clang   Configure with clang/clang++ so -Wthread-safety runs
#             (annotations are machine-checked; -Werror makes findings
#             fatal) — mirrors the CI `clang-threadsafety` job. Default
#             build dir: build-clang.
# The two flags compose (clang + TSan). Without flags: the plain gcc/
# default-compiler tier-1 run over the full suite in `build`.
set -euo pipefail

cd "$(dirname "$0")/.."

TSAN=0
CLANG=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --tsan) TSAN=1 ;;
    --clang) CLANG=1 ;;
    --help|-h)
      sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    -*)
      echo "unknown option: $arg (try --help)" >&2
      exit 2
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

CMAKE_ARGS=()
if [[ $TSAN -eq 1 ]]; then
  CMAKE_ARGS+=(-DL2R_TSAN=ON)
fi
if [[ $CLANG -eq 1 ]]; then
  command -v clang++ >/dev/null 2>&1 || {
    echo "--clang: clang++ not found in PATH" >&2
    exit 2
  }
  CMAKE_ARGS+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
fi
if [[ -z "$BUILD_DIR" ]]; then
  BUILD_DIR=build
  [[ $CLANG -eq 1 ]] && BUILD_DIR=build-clang
  [[ $TSAN -eq 1 ]] && BUILD_DIR=build-tsan
  [[ $CLANG -eq 1 && $TSAN -eq 1 ]] && BUILD_DIR=build-clang-tsan
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ $TSAN -eq 1 ]]; then
  # Fast suite + the concurrency stress suite, suppressions loaded (the
  # checked-in file is empty by policy; see tsan.supp). halt_on_error
  # turns any report into a test failure even if the test's assertions
  # would have passed.
  export TSAN_OPTIONS="suppressions=$PWD/tsan.supp halt_on_error=1"
  ctest --test-dir "$BUILD_DIR" -LE slow --output-on-failure -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" -L tsan --output-on-failure
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
