#!/usr/bin/env bash
# Perf-trajectory entry point: builds Release (benchmarks only, in its
# own build tree) and runs the serving-path throughput bench, leaving
# BENCH_query_throughput.json in the repo root.
#
# Usage: scripts/bench.sh [build-dir]          (default: build-bench)
# Knobs: L2R_BENCH_SCALE     workload scale      (default 0.3)
#        L2R_BENCH_QUERIES   query count         (default 1200)
#        L2R_BENCH_OUT       output JSON path    (default BENCH_query_throughput.json)
#        L2R_BENCH_CACHE     serving-cache pass  (default 1; 0 = cache-off only)
#        L2R_BENCH_BUDGET_US fallback budget, us (default 25; 0 = no budget)
#        L2R_BENCH_STREAM    streaming pass      (default 1; 0 = skip)
#        L2R_BENCH_STREAM_GAP_US  mean arrival gap, us (default 50)
#        L2R_BENCH_DEADLINE_SWEEP batch-deadline sweep   (default 1; 0 = skip)
#        L2R_BENCH_ADMISSION      admission-policy A/B   (default 1; 0 = skip)
#        L2R_BENCH_OVERLOAD       offered-load overload sweep (default 1; 0 = skip)
#
# The bench reports per-query latency percentiles, the serving-cache
# comparison (cache off vs on over a skewed repeated-query workload),
# multi-core batch QPS for t = 1, 2, 4, 8, the scenario dedup suite, the
# streaming front-end replay (Poisson / bursty arrivals through
# StreamRouter: QPS, batch-size histogram, queue-wait percentiles), the
# batch-deadline sweep (latency/throughput tradeoff the overload
# controller's deadline bounds come from), the degraded-admission A/B
# (kTagged / kNever / kAfterNMisses under eviction pressure), and the
# overload sweep (OverloadController + per-class shedding at 0.5x-10x
# measured capacity: goodput, shed split, drain-wait percentiles).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
BENCH_OUT="${L2R_BENCH_OUT:-BENCH_query_throughput.json}"

# Fail fast when the output path is unwritable: the bench only discovers
# this after running the whole workload, and the stale JSON it leaves
# behind looks like a fresh result.
if ! touch "$BENCH_OUT" 2>/dev/null; then
  echo "error: L2R_BENCH_OUT='$BENCH_OUT' is not writable" >&2
  echo "       (missing directory or no permission); fix the path or" >&2
  echo "       unset L2R_BENCH_OUT to write BENCH_query_throughput.json" >&2
  exit 1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DL2R_BUILD_TESTS=OFF -DL2R_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" --target query_throughput
"$BUILD_DIR/bench/query_throughput"
