#!/usr/bin/env bash
# Perf-trajectory entry point: builds Release (benchmarks only, in its
# own build tree) and runs the serving-path throughput bench, leaving
# BENCH_query_throughput.json in the repo root.
#
# Usage: scripts/bench.sh [build-dir]          (default: build-bench)
#
# Global knobs:
#   L2R_BENCH_SCALE     workload scale      (default 0.3)
#   L2R_BENCH_QUERIES   query count         (default 1200)
#   L2R_BENCH_OUT       output JSON path    (default BENCH_query_throughput.json)
#   L2R_BENCH_BUDGET_US fallback budget, us (default 25; 0 = no budget)
#   L2R_BENCH_STREAM_GAP_US  mean arrival gap, us (default 50)
#
# Gated-block matrix — each knob is INDEPENDENT (default 1 = run;
# 0 = skip; setting one never re-enables or disables another):
#   knob                      block                 JSON key
#   L2R_BENCH_CACHE           cache-on serving pass serving.cache_on
#   L2R_BENCH_STREAM          streaming replay      streaming
#   L2R_BENCH_DEADLINE_SWEEP  batch-deadline sweep  deadline_sweep
#   L2R_BENCH_ADMISSION       admission A/B (*)     admission_ab
#   L2R_BENCH_OVERLOAD        overload sweep        overload_sweep
#   L2R_BENCH_DYNAMIC         dynamic world (*)     dynamic_world
#   L2R_BENCH_SCALE_LADDER    metro-scale ladder    scale_ladder
#   L2R_BENCH_SCALE_OUT       scale-out serving     scale_out
#   (*) also requires the cache pass on (and, for admission, budget > 0).
#
# The scale ladder additionally reads L2R_BENCH_LADDER_SCALES (comma-
# separated generator scales, default "0.3,1.0,3.0"; scale 3.0 is a
# 1M+-vertex world and takes ~20s on a laptop).
#
# To run a SINGLE gated block, set L2R_BENCH_ONLY to a comma-separated
# subset of {cache,stream,deadline_sweep,admission,overload,dynamic,
# scale_ladder,scale_out}:
# every gated knob you did not set explicitly defaults to 0 and the
# listed blocks are forced on. Example — just the dynamic-world block:
#   L2R_BENCH_ONLY=cache,dynamic scripts/bench.sh
# (dynamic and admission imply the cache pass; list it explicitly.)
#
# The bench reports per-query latency percentiles, the serving-cache
# comparison (cache off vs on over a skewed repeated-query workload),
# multi-core batch QPS for t = 1, 2, 4, 8, the scenario dedup suite, the
# streaming front-end replay (Poisson / bursty arrivals through
# StreamRouter: QPS, batch-size histogram, queue-wait percentiles), the
# batch-deadline sweep (latency/throughput tradeoff the overload
# controller's deadline bounds come from), the degraded-admission A/B
# (kTagged / kNever / kAfterNMisses under eviction pressure), the
# overload sweep (OverloadController + per-class shedding at 0.5x-10x
# measured capacity: goodput, shed split, drain-wait percentiles), and
# the dynamic-world scenarios (incident_injection / rush_hour_transition
# / rolling_closures: epoch-versioned invalidation, incremental repair
# vs wholesale recompute, no-stale-serve byte audits), and the
# metro-scale ladder (generator scales 0.3/1.0/3.0: world footprint,
# CSV-vs-mmap snapshot cold start — validated and checksum-only trusted
# opens — Dijkstra QPS on the mapped image), and the scale-out block
# (full serving stack at t = 1/2/4/8 plus a StreamRouter drain-thread
# 1/2/4 audit, every rung byte-compared against the bare-router
# reference; seqlock hot-path hit counts ride along).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
BENCH_OUT="${L2R_BENCH_OUT:-BENCH_query_throughput.json}"

# L2R_BENCH_ONLY: run just the listed gated blocks (see header matrix).
# Explicitly exported knobs keep their values for the off side; listed
# blocks are forced on.
if [[ -n "${L2R_BENCH_ONLY:-}" ]]; then
  declare -A KNOB_FOR_BLOCK=(
    [cache]=L2R_BENCH_CACHE
    [stream]=L2R_BENCH_STREAM
    [deadline_sweep]=L2R_BENCH_DEADLINE_SWEEP
    [admission]=L2R_BENCH_ADMISSION
    [overload]=L2R_BENCH_OVERLOAD
    [dynamic]=L2R_BENCH_DYNAMIC
    [scale_ladder]=L2R_BENCH_SCALE_LADDER
    [scale_out]=L2R_BENCH_SCALE_OUT
  )
  for knob in "${KNOB_FOR_BLOCK[@]}"; do
    if [[ -z "${!knob:-}" ]]; then
      export "$knob"=0
    fi
  done
  IFS=',' read -ra ONLY_BLOCKS <<< "$L2R_BENCH_ONLY"
  for block in "${ONLY_BLOCKS[@]}"; do
    knob="${KNOB_FOR_BLOCK[$block]:-}"
    if [[ -z "$knob" ]]; then
      echo "error: unknown L2R_BENCH_ONLY block '$block'" >&2
      echo "       (expected a subset of: ${!KNOB_FOR_BLOCK[*]})" >&2
      exit 1
    fi
    export "$knob"=1
  done
fi

# Fail fast when the output path is unwritable: the bench only discovers
# this after running the whole workload, and the stale JSON it leaves
# behind looks like a fresh result.
if ! touch "$BENCH_OUT" 2>/dev/null; then
  echo "error: L2R_BENCH_OUT='$BENCH_OUT' is not writable" >&2
  echo "       (missing directory or no permission); fix the path or" >&2
  echo "       unset L2R_BENCH_OUT to write BENCH_query_throughput.json" >&2
  exit 1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DL2R_BUILD_TESTS=OFF -DL2R_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" --target query_throughput
"$BUILD_DIR/bench/query_throughput"
